#ifndef RUMLAB_STORAGE_DEVICE_H_
#define RUMLAB_STORAGE_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "core/status.h"
#include "core/types.h"

namespace rum {

/// Abstract block storage. Access methods program against this interface so
/// a raw simulated device (BlockDevice) and a cache stacked on top of one
/// (CachingDevice) are interchangeable -- the composition the paper's
/// Figure 2 reasons about.
class Device {
 public:
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Allocates a zeroed page of class `cls`.
  virtual PageId Allocate(DataClass cls) = 0;
  /// Frees a page.
  virtual Status Free(PageId page) = 0;
  /// Reads a whole block into `out`.
  virtual Status Read(PageId page, std::vector<uint8_t>* out) = 0;
  /// Writes a whole block (`data.size()` must equal block_size()).
  virtual Status Write(PageId page, const std::vector<uint8_t>& data) = 0;
  /// Pushes any buffered dirty state down to the bottom of the stack.
  virtual Status FlushAll() = 0;

  virtual size_t block_size() const = 0;
  /// Live page count at the bottom of the stack.
  virtual size_t live_pages() const = 0;

 protected:
  Device() = default;
};

}  // namespace rum

#endif  // RUMLAB_STORAGE_DEVICE_H_

#ifndef RUMLAB_STORAGE_DEVICE_H_
#define RUMLAB_STORAGE_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/counters.h"
#include "core/status.h"
#include "core/types.h"

namespace rum {

class Device;

/// RAII handle to a page pinned for reading. While the guard is live the
/// device keeps the underlying block bytes at a stable address and `bytes()`
/// is a zero-copy const view of the whole block. The read charge
/// (`OnRead` + `OnBlockRead`, and any injected fault) happens once, at pin
/// time -- byte-identical to the accounting of a `Device::Read` copy.
///
/// Lifetime rules: guards must not be held across `Allocate`, `Free`, or
/// `FlushAll` on the same device, and a pinned page cannot be freed.
class PageReadGuard {
 public:
  PageReadGuard() = default;
  PageReadGuard(const PageReadGuard&) = delete;
  PageReadGuard& operator=(const PageReadGuard&) = delete;
  PageReadGuard(PageReadGuard&& other) noexcept { MoveFrom(&other); }
  PageReadGuard& operator=(PageReadGuard&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }
  inline ~PageReadGuard();

  /// True when the guard holds a pin.
  bool valid() const { return device_ != nullptr; }
  PageId page() const { return page_; }
  /// Const view of the whole block; empty when !valid().
  std::span<const uint8_t> bytes() const { return {data_, size_}; }

  /// Drops the pin early (no-op on an empty guard).
  inline void Release();

 private:
  friend class Device;
  PageReadGuard(Device* device, PageId page, const uint8_t* data, size_t size)
      : device_(device), page_(page), data_(data), size_(size) {}

  void MoveFrom(PageReadGuard* other) {
    device_ = std::exchange(other->device_, nullptr);
    page_ = std::exchange(other->page_, kInvalidPageId);
    data_ = std::exchange(other->data_, nullptr);
    size_ = std::exchange(other->size_, 0);
  }

  Device* device_ = nullptr;
  PageId page_ = kInvalidPageId;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// RAII handle to a page pinned for writing. `bytes()` is a zero-copy
/// mutable view of the whole block; mutations happen in place. Nothing is
/// charged at pin time. `Release()` unpins and -- only if `MarkDirty()` was
/// called -- charges `OnWrite` + `OnBlockWrite` (consuming one fault-budget
/// token) exactly once, byte-identical to a `Device::Write` of the block.
/// A clean release charges nothing.
///
/// If the dirty release fails (injected fault), the charge did not happen,
/// the guard is left inert (no dangling dirty state, a second Release is a
/// no-op), and the in-place mutations may remain visible -- the simulated
/// analogue of a torn write.
///
/// Pinning a page for write does NOT fault its prior contents in: on a
/// cache miss the view is zero-filled, so callers must fully overwrite the
/// block unless they read-pinned the same page first. Same lifetime rules
/// as PageReadGuard.
class PageWriteGuard {
 public:
  PageWriteGuard() = default;
  PageWriteGuard(const PageWriteGuard&) = delete;
  PageWriteGuard& operator=(const PageWriteGuard&) = delete;
  PageWriteGuard(PageWriteGuard&& other) noexcept { MoveFrom(&other); }
  PageWriteGuard& operator=(PageWriteGuard&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }
  /// Releases the pin, ignoring the unpin status (use Release() on paths
  /// that must observe write faults).
  inline ~PageWriteGuard();

  bool valid() const { return device_ != nullptr; }
  PageId page() const { return page_; }
  /// Mutable view of the whole block; empty when !valid().
  std::span<uint8_t> bytes() const { return {data_, size_}; }

  /// Marks the block modified; the write charge happens at Release().
  void MarkDirty() { dirty_ = true; }
  bool dirty() const { return dirty_; }

  /// Unpins; charges the write iff dirty. Returns the charge status.
  inline Status Release();

 private:
  friend class Device;
  PageWriteGuard(Device* device, PageId page, uint8_t* data, size_t size)
      : device_(device), page_(page), data_(data), size_(size) {}

  void MoveFrom(PageWriteGuard* other) {
    device_ = std::exchange(other->device_, nullptr);
    page_ = std::exchange(other->page_, kInvalidPageId);
    data_ = std::exchange(other->data_, nullptr);
    size_ = std::exchange(other->size_, 0);
    dirty_ = std::exchange(other->dirty_, false);
  }

  Device* device_ = nullptr;
  PageId page_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool dirty_ = false;
};

/// Abstract block storage. Access methods program against this interface so
/// a raw simulated device (BlockDevice) and a cache stacked on top of one
/// (CachingDevice) are interchangeable -- the composition the paper's
/// Figure 2 reasons about.
///
/// Two access styles with byte-identical RUM accounting:
///  - copy path: `Read` / `Write` move whole blocks through caller vectors;
///  - pin path: `PinForRead` / `PinForWrite` hand out zero-copy views into
///    the device's own storage (see the guard classes above for the
///    charging contract and lifetime rules).
class Device {
 public:
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Allocates a zeroed page of class `cls` into `*out`. Allocation is
  /// fallible (fault injection models a full or failing device); on error
  /// `*out` is left untouched and nothing is charged.
  virtual Status Allocate(DataClass cls, PageId* out) = 0;
  /// Frees a page. Fails if the page is pinned.
  virtual Status Free(PageId page) = 0;
  /// Reads a whole block into `out`.
  virtual Status Read(PageId page, std::vector<uint8_t>* out) = 0;
  /// Writes a whole block (`data.size()` must equal block_size()).
  virtual Status Write(PageId page, const std::vector<uint8_t>& data) = 0;
  /// Pushes any buffered dirty state down to the bottom of the stack.
  virtual Status FlushAll() = 0;

  /// Simulates a process crash at this level and below: all buffered dirty
  /// state is dropped without write-back and all open pins are abandoned.
  /// Durable state (what reached the bottom of the stack) survives. Guards
  /// still held by callers become invalid -- their eventual release is
  /// tolerated as a no-op, but their views must not be touched again. The
  /// default is a no-op (a level with nothing volatile).
  virtual void Crash() {}

  /// Pins `page` and charges the read (same charge as `Read`). On failure
  /// nothing is charged and `*out` is left invalid.
  virtual Status PinForRead(PageId page, PageReadGuard* out) = 0;
  /// Pins `page` for in-place writing; charges nothing until a dirty
  /// release. On failure `*out` is left invalid.
  virtual Status PinForWrite(PageId page, PageWriteGuard* out) = 0;

  virtual size_t block_size() const = 0;
  /// Live page count at the bottom of the stack.
  virtual size_t live_pages() const = 0;

 protected:
  Device() = default;

  /// Unpin hooks the guards call on release. `UnpinWrite` performs the
  /// dirty-write charge and returns its status.
  virtual void UnpinRead(PageId page) = 0;
  virtual Status UnpinWrite(PageId page, bool dirty) = 0;

  /// Guard factories for implementations (guard constructors are private).
  static PageReadGuard MakeReadGuard(Device* device, PageId page,
                                     const uint8_t* data, size_t size) {
    return PageReadGuard(device, page, data, size);
  }
  static PageWriteGuard MakeWriteGuard(Device* device, PageId page,
                                       uint8_t* data, size_t size) {
    return PageWriteGuard(device, page, data, size);
  }

 private:
  friend class PageReadGuard;
  friend class PageWriteGuard;
};

inline void PageReadGuard::Release() {
  if (device_ == nullptr) return;
  Device* device = std::exchange(device_, nullptr);
  device->UnpinRead(page_);
  data_ = nullptr;
  size_ = 0;
}

inline PageReadGuard::~PageReadGuard() { Release(); }

inline Status PageWriteGuard::Release() {
  if (device_ == nullptr) return Status::OK();
  Device* device = std::exchange(device_, nullptr);
  bool dirty = std::exchange(dirty_, false);
  data_ = nullptr;
  size_ = 0;
  return device->UnpinWrite(page_, dirty);
}

inline PageWriteGuard::~PageWriteGuard() { Release(); }

}  // namespace rum

#endif  // RUMLAB_STORAGE_DEVICE_H_

#include "storage/block_device.h"

#include <cassert>

#include "core/trace.h"

namespace rum {

BlockDevice::BlockDevice(size_t block_size, RumCounters* counters)
    : block_size_(block_size), counters_(counters) {
  assert(block_size_ > 0);
  assert(counters_ != nullptr);
  metrics_.Init("block_device");
  metrics_.Gauge("live_pages",
                 [this] { return static_cast<uint64_t>(live_total_); });
  metrics_.Gauge("live_pages_base",
                 [this] { return static_cast<uint64_t>(live_base_); });
  metrics_.Gauge("live_pages_aux",
                 [this] { return static_cast<uint64_t>(live_aux_); });
  metrics_.Gauge("pinned_pages",
                 [this] { return static_cast<uint64_t>(pins_outstanding_); });
}

Status BlockDevice::Allocate(DataClass cls, PageId* out) {
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    pages_[id].bytes.assign(block_size_, 0);
    pages_[id].cls = cls;
    pages_[id].live = true;
  } else {
    id = static_cast<PageId>(pages_.size());
    PageSlot slot;
    slot.bytes.assign(block_size_, 0);
    slot.cls = cls;
    slot.live = true;
    pages_.push_back(std::move(slot));
  }
  ++live_total_;
  if (cls == DataClass::kBase) {
    ++live_base_;
  } else {
    ++live_aux_;
  }
  counters_->AdjustSpace(cls, static_cast<int64_t>(block_size_));
  *out = id;
  return Status::OK();
}

Status BlockDevice::CheckLive(PageId page) const {
  if (page >= pages_.size() || !pages_[page].live) {
    return Status::InvalidArgument("page not live");
  }
  return Status::OK();
}

Status BlockDevice::Free(PageId page) {
  Status s = CheckLive(page);
  if (!s.ok()) return s;
  PageSlot& slot = pages_[page];
  if (slot.pins != 0) {
    return Status::InvalidArgument("cannot free a pinned page");
  }
  slot.live = false;
  // Keep the slot's capacity: Allocate() re-zeroes recycled slots in place,
  // so freeing must not force a reallocation on the next reuse.
  slot.bytes.clear();
  free_list_.push_back(page);
  --live_total_;
  if (slot.cls == DataClass::kBase) {
    --live_base_;
  } else {
    --live_aux_;
  }
  counters_->AdjustSpace(slot.cls, -static_cast<int64_t>(block_size_));
  return Status::OK();
}

Status BlockDevice::Read(PageId page, std::vector<uint8_t>* out) {
  Status s = ChargeRead(page);
  if (!s.ok()) return s;
  *out = pages_[page].bytes;
  return Status::OK();
}

Status BlockDevice::Write(PageId page, const std::vector<uint8_t>& data) {
  if (data.size() != block_size_) {
    return Status::InvalidArgument("write size must equal block size");
  }
  Status s = ChargeWrite(page);
  if (!s.ok()) return s;
  pages_[page].bytes = data;
  return Status::OK();
}

Status BlockDevice::PinForRead(PageId page, PageReadGuard* out) {
  Status s = ChargeRead(page);
  if (!s.ok()) return s;
  PageSlot& slot = pages_[page];
  ++slot.pins;
  ++pins_outstanding_;
  *out = MakeReadGuard(this, page, slot.bytes.data(), block_size_);
  return Status::OK();
}

Status BlockDevice::PinForWrite(PageId page, PageWriteGuard* out) {
  Status s = CheckLive(page);
  if (!s.ok()) return s;
  PageSlot& slot = pages_[page];
  ++slot.pins;
  ++pins_outstanding_;
  *out = MakeWriteGuard(this, page, slot.bytes.data(), block_size_);
  return Status::OK();
}

void BlockDevice::UnpinRead(PageId page) {
  assert(page < pages_.size());
  // A zero pin count here means the guard outlived a Crash(); its release
  // is tolerated as a no-op (the crash already dropped the pin).
  if (page >= pages_.size() || pages_[page].pins == 0) return;
  --pages_[page].pins;
  --pins_outstanding_;
}

Status BlockDevice::UnpinWrite(PageId page, bool dirty) {
  assert(page < pages_.size());
  if (page >= pages_.size() || pages_[page].pins == 0) {
    return Status::OK();  // Post-crash abandoned guard.
  }
  --pages_[page].pins;
  --pins_outstanding_;
  if (!dirty) return Status::OK();
  return ChargeWrite(page);
}

void BlockDevice::Crash() {
  Trace::Emit(TraceKind::kCrash, TraceOp::kNone, kInvalidPageId,
              DataClass::kBase, pins_outstanding_);
  for (PageSlot& slot : pages_) slot.pins = 0;
  pins_outstanding_ = 0;
}

std::vector<uint8_t>* BlockDevice::mutable_page_unaccounted(PageId page) {
  if (!CheckLive(page).ok()) return nullptr;
  return &pages_[page].bytes;
}

const std::vector<uint8_t>* BlockDevice::page_unaccounted(PageId page) const {
  if (!CheckLive(page).ok()) return nullptr;
  return &pages_[page].bytes;
}

Status BlockDevice::ChargeRead(PageId page) const {
  Status s = CheckLive(page);
  if (!s.ok()) return s;
  counters_->OnRead(pages_[page].cls, block_size_);
  counters_->OnBlockRead();
  return Status::OK();
}

Status BlockDevice::ChargeWrite(PageId page) {
  Status s = CheckLive(page);
  if (!s.ok()) return s;
  counters_->OnWrite(pages_[page].cls, block_size_);
  counters_->OnBlockWrite();
  return Status::OK();
}

Status BlockDevice::Reclassify(PageId page, DataClass cls) {
  Status s = CheckLive(page);
  if (!s.ok()) return s;
  PageSlot& slot = pages_[page];
  if (slot.cls == cls) return Status::OK();
  counters_->AdjustSpace(slot.cls, -static_cast<int64_t>(block_size_));
  counters_->AdjustSpace(cls, static_cast<int64_t>(block_size_));
  if (slot.cls == DataClass::kBase) {
    --live_base_;
    ++live_aux_;
  } else {
    --live_aux_;
    ++live_base_;
  }
  slot.cls = cls;
  return Status::OK();
}

}  // namespace rum

#include "storage/retry_device.h"

#include <cassert>
#include <utility>

#include "core/trace.h"

namespace rum {

RetryingDevice::RetryingDevice(Device* base, const Options& options,
                               RumCounters* counters)
    : base_(base), counters_(counters), policy_(options.storage.retry) {
  assert(base_ != nullptr);
  assert(counters_ != nullptr);
  if (policy_.max_attempts == 0) policy_.max_attempts = 1;
  metrics_.Init("retrying_device");
  metrics_.Gauge("simulated_backoff_us",
                 [this] { return simulated_backoff_us(); });
}

uint64_t RetryingDevice::simulated_backoff_us() const {
  return backoff_us_.load(std::memory_order_relaxed);
}

template <typename Op>
Status RetryingDevice::WithRetries(TraceOp traced_op, PageId page, Op&& op) {
  Status s;
  for (size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (attempt > 1) {
      counters_->OnRetry();
      Trace::Emit(TraceKind::kRetryAttempt, traced_op, page, DataClass::kBase,
                  attempt);
      backoff_us_.fetch_add(policy_.backoff_base_us << (attempt - 2),
                            std::memory_order_relaxed);
    }
    s = op();
    if (s.ok()) return s;
    // Only operations that actually returned kIOError charge the io_errors
    // tick (the counters.h contract); a kCorruption or argument failure is
    // not an I/O error and is never retried either.
    if (s.code() != Code::kIOError) return s;
    counters_->OnIoError();
  }
  return s;
}

Status RetryingDevice::Allocate(DataClass cls, PageId* out) {
  return WithRetries(TraceOp::kAllocate, kInvalidPageId,
                     [&] { return base_->Allocate(cls, out); });
}

Status RetryingDevice::Free(PageId page) {
  // Free is not an I/O in the fault model; forward directly.
  return base_->Free(page);
}

Status RetryingDevice::Read(PageId page, std::vector<uint8_t>* out) {
  return WithRetries(TraceOp::kRead, page,
                     [&] { return base_->Read(page, out); });
}

Status RetryingDevice::Write(PageId page, const std::vector<uint8_t>& data) {
  return WithRetries(TraceOp::kWrite, page,
                     [&] { return base_->Write(page, data); });
}

Status RetryingDevice::FlushAll() {
  return WithRetries(TraceOp::kFlush, kInvalidPageId,
                     [&] { return base_->FlushAll(); });
}

Status RetryingDevice::PinForRead(PageId page, PageReadGuard* out) {
  return WithRetries(TraceOp::kPin, page,
                     [&] { return base_->PinForRead(page, out); });
}

Status RetryingDevice::PinForWrite(PageId page, PageWriteGuard* out) {
  return WithRetries(TraceOp::kPin, page,
                     [&] { return base_->PinForWrite(page, out); });
}

}  // namespace rum

#include "storage/retry_device.h"

#include <cassert>
#include <string>
#include <utility>

#include "core/status_builder.h"
#include "core/trace.h"

namespace rum {

RetryingDevice::RetryingDevice(Device* base, const Options& options,
                               RumCounters* counters)
    : base_(base), counters_(counters), policy_(options.storage.retry) {
  assert(base_ != nullptr);
  assert(counters_ != nullptr);
  if (policy_.max_attempts == 0) policy_.max_attempts = 1;
  metrics_.Init("retrying_device");
  metrics_.Gauge("simulated_backoff_us",
                 [this] { return simulated_backoff_us(); });
}

uint64_t RetryingDevice::simulated_backoff_us() const {
  return backoff_us_.load(std::memory_order_relaxed);
}

RetryingDevice::Effective RetryingDevice::PolicyFor(TraceOp op) const {
  const Options::Storage::Retry::OpPolicy* p = nullptr;
  switch (op) {
    case TraceOp::kRead: p = &policy_.read; break;
    case TraceOp::kWrite: p = &policy_.write; break;
    case TraceOp::kPin: p = &policy_.pin; break;
    case TraceOp::kAllocate: p = &policy_.allocate; break;
    case TraceOp::kFlush: p = &policy_.flush; break;
    default: break;
  }
  Effective e{policy_.max_attempts, policy_.backoff_base_us};
  if (p != nullptr) {
    if (p->max_attempts > 0) e.attempts = p->max_attempts;
    if (p->backoff_base_us > 0) e.backoff_base_us = p->backoff_base_us;
  }
  if (e.attempts == 0) e.attempts = 1;
  return e;
}

template <typename Op>
Status RetryingDevice::WithRetries(TraceOp traced_op, PageId page, Op&& op) {
  Effective eff = PolicyFor(traced_op);
  uint64_t waited_us = 0;
  Status s;
  for (size_t attempt = 1; attempt <= eff.attempts; ++attempt) {
    if (attempt > 1) {
      counters_->OnRetry();
      Trace::Emit(TraceKind::kRetryAttempt, traced_op, page, DataClass::kBase,
                  attempt);
      uint64_t wait = eff.backoff_base_us << (attempt - 2);
      waited_us += wait;
      backoff_us_.fetch_add(wait, std::memory_order_relaxed);
    }
    s = op();
    if (s.ok()) return s;
    // Only operations that actually returned kIOError charge the io_errors
    // tick (the counters.h contract); a kCorruption or argument failure is
    // not an I/O error and is never retried either.
    if (s.code() != Code::kIOError) return s;
    counters_->OnIoError();
  }
  // A real retry budget (> 1 attempt) that never saw the fault clear is a
  // different signal than one transient kIOError: the resource is
  // unavailable. Surface it as such, with the budget and the total
  // simulated backoff attached, so callers can distinguish "fail-fast
  // error" from "kept trying and gave up". Fail-fast policies (1 attempt)
  // keep the raw kIOError.
  if (eff.attempts > 1 && policy_.unavailable_when_exhausted) {
    return StatusBuilder(Code::kUnavailable, s.message())
        .Detail("retry budget exhausted after " +
                std::to_string(eff.attempts) + " attempts, " +
                std::to_string(waited_us) + "us simulated backoff");
  }
  return s;
}

Status RetryingDevice::Allocate(DataClass cls, PageId* out) {
  return WithRetries(TraceOp::kAllocate, kInvalidPageId,
                     [&] { return base_->Allocate(cls, out); });
}

Status RetryingDevice::Free(PageId page) {
  // Free is not an I/O in the fault model; forward directly.
  return base_->Free(page);
}

Status RetryingDevice::Read(PageId page, std::vector<uint8_t>* out) {
  return WithRetries(TraceOp::kRead, page,
                     [&] { return base_->Read(page, out); });
}

Status RetryingDevice::Write(PageId page, const std::vector<uint8_t>& data) {
  return WithRetries(TraceOp::kWrite, page,
                     [&] { return base_->Write(page, data); });
}

Status RetryingDevice::FlushAll() {
  return WithRetries(TraceOp::kFlush, kInvalidPageId,
                     [&] { return base_->FlushAll(); });
}

Status RetryingDevice::PinForRead(PageId page, PageReadGuard* out) {
  return WithRetries(TraceOp::kPin, page,
                     [&] { return base_->PinForRead(page, out); });
}

Status RetryingDevice::PinForWrite(PageId page, PageWriteGuard* out) {
  return WithRetries(TraceOp::kPin, page,
                     [&] { return base_->PinForWrite(page, out); });
}

}  // namespace rum

#ifndef RUMLAB_STORAGE_FAULT_H_
#define RUMLAB_STORAGE_FAULT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rum {

/// The classes of device operations a FaultPlan can target independently.
/// `kPin` covers pin acquisition (read and write); the dirty release of a
/// write pin is a write-class event (it is the moment the block write is
/// charged, exactly like Device::Write).
enum class FaultOp : uint8_t {
  kRead = 0,
  kWrite,
  kPin,
  kAllocate,
  kFlush,
};

inline constexpr size_t kFaultOpCount = 5;

/// Short stable name ("Read", "Write", "Pin", "Allocate", "Flush").
std::string_view FaultOpName(FaultOp op);

/// A declarative, deterministic failure policy for a FaultyDevice.
///
/// Two fault shapes compose:
///  - *Transient* faults: each attempt of a targeted op class fails with the
///    class's probability, decided by a seeded hash of (seed, class, attempt
///    index) -- fully deterministic given the op sequence, and independent
///    across attempts, so a bounded retry usually clears them.
///  - A *permanent* fault: after `fail_after_io` charged I/O operations
///    succeed (block reads, block writes, pin-read acquisitions, dirty pin
///    releases -- the same set the legacy BlockDevice budget counted), every
///    subsequent targeted op fails until the plan is cleared. This is the
///    migration target of the old InjectFailureAfter API.
///
/// Torn writes model power-loss mid-block: when a write-class fault fires
/// and the torn draw hits, the trailing `torn_tail_bytes` of the block are
/// bit-flipped in place before the error returns, and the page is marked
/// corrupt. The FaultyDevice then serves every read of that page with
/// kCorruption until the page is fully rewritten or reallocated -- the
/// simulated analogue of a per-block checksum catching the tear, which is
/// what makes "no silently wrong answer" enforceable above it.
struct FaultPlan {
  /// Seed for every transient/torn decision. Two devices running the same
  /// op sequence under the same seed inject byte-identical faults.
  uint64_t seed = 0;

  /// Per-class probability in [0, 1] that one attempt suffers a transient
  /// fault. Indexed by FaultOp.
  std::array<double, kFaultOpCount> transient_rate{};

  /// Charged I/O ops allowed to succeed before the device fails permanently.
  /// kNever disables the permanent fault.
  static constexpr uint64_t kNever = ~0ull;
  uint64_t fail_after_io = kNever;

  /// Probability that a write-class fault is torn (see above) rather than a
  /// clean rejection.
  double torn_write_rate = 0.0;
  /// Trailing bytes of the block the tear flips (clamped to the block size).
  size_t torn_tail_bytes = 64;

  /// No faults at all (the default-constructed plan).
  static FaultPlan None() { return FaultPlan{}; }

  /// The legacy budget: `ops` more charged I/Os succeed, then everything
  /// fails until the plan is cleared.
  static FaultPlan FailAfter(uint64_t ops) {
    FaultPlan plan;
    plan.fail_after_io = ops;
    return plan;
  }

  /// Transient faults at `rate` on every op class.
  static FaultPlan Transient(uint64_t seed, double rate);

  /// Builder-style tweak: sets one class's transient rate.
  FaultPlan& WithRate(FaultOp op, double rate) {
    transient_rate[static_cast<size_t>(op)] = rate;
    return *this;
  }

  /// Builder-style tweak: arms torn writes.
  FaultPlan& WithTornWrites(double rate, size_t tail_bytes = 64) {
    torn_write_rate = rate;
    torn_tail_bytes = tail_bytes;
    return *this;
  }

  /// True when the plan can ever inject a fault.
  bool active() const;
};

/// One deterministic fault draw: true when attempt `index` of class `op`
/// under `seed` should fail at probability `rate`. Pure function of its
/// arguments (SplitMix64 over the tuple), so replaying an op sequence
/// replays its faults exactly.
bool FaultDraw(uint64_t seed, FaultOp op, uint64_t index, double rate);

}  // namespace rum

#endif  // RUMLAB_STORAGE_FAULT_H_

#include "storage/caching_device.h"

#include <cassert>
#include <chrono>
#include <utility>

#include "core/status_builder.h"
#include "core/trace.h"

namespace rum {

namespace {
/// Steady-clock nanoseconds, read only on traced pin transitions.
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

CachingDevice::CachingDevice(Device* base, size_t capacity_pages,
                             MemoryRegistrar* registrar)
    : base_(base), registrar_(registrar), capacity_pages_(capacity_pages) {
  assert(base_ != nullptr);
  if (registrar_ != nullptr) registrar_->RegisterPool(this);
  metrics_.Init("caching_device");
  metrics_.Gauge("hits", [this] { return hits(); });
  metrics_.Gauge("misses", [this] { return misses(); });
  metrics_.Gauge("evictions", [this] { return evictions(); });
  metrics_.Gauge("write_backs", [this] { return write_backs(); });
  metrics_.Gauge("write_back_failures",
                 [this] { return write_back_failures(); });
  metrics_.Gauge("cached_pages",
                 [this] { return static_cast<uint64_t>(cached_pages()); });
  metrics_.Gauge("pinned_pages",
                 [this] { return static_cast<uint64_t>(pinned_pages()); });
}

CachingDevice::~CachingDevice() {
  if (registrar_ != nullptr) registrar_->UnregisterPool(this);
}

void CachingDevice::TickRegistrar() {
  if (registrar_ != nullptr) registrar_->NotePoolOps(1);
}

Status CachingDevice::SetCapacity(size_t capacity_pages) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_pages_ = capacity_pages;
  // Trim immediately with the pin-safe sweep: pinned entries and victims
  // whose write-back fails are skipped, never sweep-ending, so a shrink
  // below the pinned population cannot wedge -- residency converges to the
  // new cap through the unpin-time EvictDownTo as pins release.
  return EvictDownTo(capacity_pages_);
}

uint64_t CachingDevice::pool_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint64_t>(capacity_pages_) * block_size();
}

void CachingDevice::SetPoolBytes(uint64_t bytes) {
  (void)SetCapacity(static_cast<size_t>(bytes / block_size()));
}

uint64_t CachingDevice::BenefitSignal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_ * block_size();
}

size_t CachingDevice::capacity_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_pages_;
}

Status CachingDevice::Allocate(DataClass cls, PageId* out) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteRecoveryLocked();
  return base_->Allocate(cls, out);
}

void CachingDevice::NoteRecoveryLocked() {
  if (!crashed_) return;
  crashed_ = false;
  Trace::Emit(TraceKind::kRecovery, TraceOp::kNone, kInvalidPageId,
              DataClass::kAux);
}

size_t CachingDevice::cached_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t CachingDevice::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t CachingDevice::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t CachingDevice::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

uint64_t CachingDevice::write_backs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_backs_;
}

uint64_t CachingDevice::write_back_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_back_failures_;
}

size_t CachingDevice::pinned_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pins_outstanding_;
}

Status CachingDevice::Free(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    if (it->second.pins != 0) {
      return Status::InvalidArgument("cannot free a pinned page");
    }
    DropEntry(page, &it->second);
  }
  return base_->Free(page);
}

void CachingDevice::Touch(PageId page, CacheEntry* entry) {
  lru_.erase(entry->lru_pos);
  lru_.push_front(page);
  entry->lru_pos = lru_.begin();
}

std::list<PageId>::iterator CachingDevice::DropEntry(PageId page,
                                                     CacheEntry* entry) {
  counters_.AdjustSpace(DataClass::kAux, -static_cast<int64_t>(block_size()));
  auto next = lru_.erase(entry->lru_pos);
  entries_.erase(page);
  return next;
}

Status CachingDevice::EvictDownTo(size_t target) {
  // One backward sweep, LRU toward MRU. Skipping (rather than aborting on)
  // pinned entries and failed write-backs is what keeps a single unwritable
  // dirty page from wedging eviction while clean victims exist -- and the
  // cache can never grow past capacity under repeated write-back faults,
  // because the stuck victims stay *within* the existing entry set and
  // inserts that cannot make room below capacity fail instead of growing.
  Status first_failure = Status::OK();
  auto it = lru_.end();
  while (entries_.size() > target && it != lru_.begin()) {
    --it;
    PageId page = *it;
    CacheEntry& entry = entries_.at(page);
    if (entry.pins != 0) continue;  // Must stay at a stable address.
    bool was_dirty = entry.dirty;
    if (was_dirty) {
      Status s = base_->Write(page, entry.bytes);
      if (!s.ok()) {
        ++write_back_failures_;
        Trace::Emit(TraceKind::kCacheWriteBackFail, TraceOp::kWrite, page,
                    DataClass::kAux);
        if (first_failure.ok()) {
          // Name the victim: the caller's op (an unrelated insert or unpin)
          // is not the page whose write-back actually failed.
          first_failure =
              StatusBuilder(s).Op("EvictDownTo write-back").Page(page);
        }
        continue;  // Victim stays cached (and dirty); try the next one.
      }
      ++write_backs_;
      Trace::Emit(TraceKind::kCacheWriteBack, TraceOp::kWrite, page,
                  DataClass::kAux);
    }
    ++evictions_;
    Trace::Emit(TraceKind::kCacheEvict, TraceOp::kNone, page, DataClass::kAux,
                was_dirty ? 1 : 0);
    it = DropEntry(page, &entry);
  }
  // Report a failure only when it actually kept the cache above target; an
  // all-pinned overshoot is the caller's documented transient state.
  if (entries_.size() > target && !first_failure.ok()) return first_failure;
  return Status::OK();
}

Status CachingDevice::InsertEntry(PageId page, std::vector<uint8_t> bytes,
                                  bool dirty) {
  if (capacity_pages_ == 0) {
    // Degenerate cache: write-through, cache nothing.
    if (dirty) return base_->Write(page, bytes);
    return Status::OK();
  }
  if (entries_.size() >= capacity_pages_) {
    Status s = EvictDownTo(capacity_pages_ - 1);
    if (!s.ok()) return s;
  }
  lru_.push_front(page);
  CacheEntry entry;
  entry.bytes = std::move(bytes);
  entry.dirty = dirty;
  entry.lru_pos = lru_.begin();
  entries_.emplace(page, std::move(entry));
  counters_.AdjustSpace(DataClass::kAux, static_cast<int64_t>(block_size()));
  return Status::OK();
}

CachingDevice::CacheEntry* CachingDevice::InsertPinnedEntry(
    PageId page, std::vector<uint8_t> bytes, bool speculative, Status* s) {
  // Unlike the copy path, pins always need a resident entry -- even at
  // capacity 0, where the entry lives only for the pin window and is
  // trimmed away (write-back if dirty) when the last pin releases.
  if (capacity_pages_ > 0 && entries_.size() >= capacity_pages_) {
    *s = EvictDownTo(capacity_pages_ - 1);
    if (!s->ok()) return nullptr;
  }
  lru_.push_front(page);
  CacheEntry entry;
  entry.bytes = std::move(bytes);
  entry.pins = 1;
  entry.speculative = speculative;
  entry.lru_pos = lru_.begin();
  CacheEntry* inserted = &entries_.emplace(page, std::move(entry)).first->second;
  counters_.AdjustSpace(DataClass::kAux, static_cast<int64_t>(block_size()));
  ++pins_outstanding_;
  *s = Status::OK();
  return inserted;
}

Status CachingDevice::Read(PageId page, std::vector<uint8_t>* out) {
  Status result = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    NoteRecoveryLocked();
    auto it = entries_.find(page);
    if (it != entries_.end()) {
      ++hits_;
      Trace::Emit(TraceKind::kCacheHit, TraceOp::kRead, page, DataClass::kAux);
      // Served at this level: charge the cache, not the device below.
      counters_.OnRead(DataClass::kAux, block_size());
      counters_.OnBlockRead();
      Touch(page, &it->second);
      *out = it->second.bytes;
      return Status::OK();
    }
    ++misses_;
    Trace::Emit(TraceKind::kCacheMiss, TraceOp::kRead, page, DataClass::kAux);
    Status s = base_->Read(page, out);
    if (!s.ok()) return s;
    return InsertEntry(page, *out, /*dirty=*/false);
  }();
  TickRegistrar();  // Outside mu_: a replan here re-enters SetCapacity.
  return result;
}

Status CachingDevice::Write(PageId page, const std::vector<uint8_t>& data) {
  Status result = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    NoteRecoveryLocked();
    if (data.size() != block_size()) {
      return Status::InvalidArgument("write size must equal block size");
    }
    counters_.OnWrite(DataClass::kAux, block_size());
    counters_.OnBlockWrite();
    auto it = entries_.find(page);
    if (it != entries_.end()) {
      Trace::Emit(TraceKind::kCacheHit, TraceOp::kWrite, page,
                  DataClass::kAux);
      it->second.bytes = data;
      it->second.dirty = true;
      Touch(page, &it->second);
      return Status::OK();
    }
    Trace::Emit(TraceKind::kCacheMiss, TraceOp::kWrite, page, DataClass::kAux);
    return InsertEntry(page, data, /*dirty=*/true);
  }();
  TickRegistrar();
  return result;
}

Status CachingDevice::PinForRead(PageId page, PageReadGuard* out) {
  Status result = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    NoteRecoveryLocked();
    auto it = entries_.find(page);
    if (it != entries_.end()) {
      ++hits_;
      Trace::Emit(TraceKind::kCacheHit, TraceOp::kPin, page, DataClass::kAux);
      // Served at this level: charge the cache, not the device below.
      counters_.OnRead(DataClass::kAux, block_size());
      counters_.OnBlockRead();
      Touch(page, &it->second);
      ++it->second.pins;
      ++pins_outstanding_;
      if (Trace::enabled()) {
        if (it->second.pins == 1) it->second.pinned_at_ns = NowNs();
        Trace::Emit(TraceKind::kPinAcquire, TraceOp::kPin, page,
                    DataClass::kAux);
      }
      *out = MakeReadGuard(this, page, it->second.bytes.data(), block_size());
      return Status::OK();
    }
    ++misses_;
    Trace::Emit(TraceKind::kCacheMiss, TraceOp::kPin, page, DataClass::kAux);
    std::vector<uint8_t> bytes;
    Status s = base_->Read(page, &bytes);
    if (!s.ok()) return s;
    CacheEntry* entry =
        InsertPinnedEntry(page, std::move(bytes), /*speculative=*/false, &s);
    if (entry == nullptr) return s;
    if (Trace::enabled()) {
      entry->pinned_at_ns = NowNs();
      Trace::Emit(TraceKind::kPinAcquire, TraceOp::kPin, page,
                  DataClass::kAux);
    }
    *out = MakeReadGuard(this, page, entry->bytes.data(), block_size());
    return Status::OK();
  }();
  // Outside mu_. The just-pinned entry is eviction-exempt, so a replan
  // fired by this tick cannot invalidate the guard handed out above.
  TickRegistrar();
  return result;
}

Status CachingDevice::PinForWrite(PageId page, PageWriteGuard* out) {
  Status result = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    NoteRecoveryLocked();
    auto it = entries_.find(page);
    if (it != entries_.end()) {
      Touch(page, &it->second);
      ++it->second.pins;
      ++pins_outstanding_;
      if (Trace::enabled()) {
        if (it->second.pins == 1) it->second.pinned_at_ns = NowNs();
        Trace::Emit(TraceKind::kPinAcquire, TraceOp::kPin, page,
                    DataClass::kAux);
      }
      *out = MakeWriteGuard(this, page, it->second.bytes.data(), block_size());
      return Status::OK();
    }
    // Blind write pin: hand out a zeroed block without faulting the page in,
    // mirroring the copy path's Write-on-miss (no base read is charged).
    Status s;
    CacheEntry* entry = InsertPinnedEntry(
        page, std::vector<uint8_t>(block_size(), 0), /*speculative=*/true, &s);
    if (entry == nullptr) return s;
    if (Trace::enabled()) {
      entry->pinned_at_ns = NowNs();
      Trace::Emit(TraceKind::kPinAcquire, TraceOp::kPin, page,
                  DataClass::kAux);
    }
    *out = MakeWriteGuard(this, page, entry->bytes.data(), block_size());
    return Status::OK();
  }();
  TickRegistrar();
  return result;
}

void CachingDevice::UnpinRead(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(page);
  if (it == entries_.end() || it->second.pins == 0) {
    return;  // Post-crash abandoned guard.
  }
  --it->second.pins;
  --pins_outstanding_;
  if (Trace::enabled()) {
    uint64_t held = it->second.pins == 0 && it->second.pinned_at_ns != 0
                        ? NowNs() - it->second.pinned_at_ns
                        : 0;
    Trace::Emit(TraceKind::kPinRelease, TraceOp::kPin, page, DataClass::kAux,
                held);
  }
  if (it->second.pins == 0) {
    // Trim any pin-induced overshoot. A failed write-back here simply
    // leaves the dirty victim cached; it retries on the next eviction.
    EvictDownTo(capacity_pages_);
  }
}

Status CachingDevice::UnpinWrite(PageId page, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(page);
  if (it == entries_.end() || it->second.pins == 0) {
    return Status::OK();  // Post-crash abandoned guard.
  }
  CacheEntry& entry = it->second;
  --entry.pins;
  --pins_outstanding_;
  if (Trace::enabled()) {
    uint64_t held = entry.pins == 0 && entry.pinned_at_ns != 0
                        ? NowNs() - entry.pinned_at_ns
                        : 0;
    Trace::Emit(TraceKind::kPinRelease, TraceOp::kPin, page, DataClass::kAux,
                held);
  }
  if (dirty) {
    // The write lands at this level; charge it here exactly like Write.
    counters_.OnWrite(DataClass::kAux, block_size());
    counters_.OnBlockWrite();
    entry.dirty = true;
    entry.speculative = false;
  } else if (entry.speculative && entry.pins == 0) {
    // A missed write pin released clean never became real data; drop it so
    // later reads are not served zeros.
    DropEntry(page, &entry);
    return Status::OK();
  }
  if (entry.pins == 0) {
    return EvictDownTo(capacity_pages_);
  }
  return Status::OK();
}

Status CachingDevice::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  NoteRecoveryLocked();
  for (auto& [page, entry] : entries_) {
    if (entry.dirty) {
      Status s = base_->Write(page, entry.bytes);
      if (!s.ok()) {
        Trace::Emit(TraceKind::kCacheWriteBackFail, TraceOp::kFlush, page,
                    DataClass::kAux);
        return StatusBuilder(s).Op("FlushAll write-back").Page(page);
      }
      ++write_backs_;
      Trace::Emit(TraceKind::kCacheWriteBack, TraceOp::kFlush, page,
                  DataClass::kAux);
      entry.dirty = false;
    }
  }
  return base_->FlushAll();
}

void CachingDevice::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  Trace::Emit(TraceKind::kCrash, TraceOp::kNone, kInvalidPageId,
              DataClass::kAux, entries_.size());
  crashed_ = true;
  // All buffered state -- dirty or clean -- is volatile at this level;
  // releasing it adjusts this level's resident space back down. Dirty bytes
  // that never reached the base are simply lost, which is the point.
  counters_.AdjustSpace(
      DataClass::kAux,
      -static_cast<int64_t>(entries_.size() * block_size()));
  entries_.clear();
  lru_.clear();
  pins_outstanding_ = 0;
  base_->Crash();
}

}  // namespace rum

#include "storage/caching_device.h"

#include <cassert>
#include <utility>

#include "core/status_builder.h"

namespace rum {

CachingDevice::CachingDevice(Device* base, size_t capacity_pages)
    : base_(base), capacity_pages_(capacity_pages) {
  assert(base_ != nullptr);
}

Status CachingDevice::Allocate(DataClass cls, PageId* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return base_->Allocate(cls, out);
}

size_t CachingDevice::cached_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t CachingDevice::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t CachingDevice::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t CachingDevice::pinned_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pins_outstanding_;
}

Status CachingDevice::Free(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    if (it->second.pins != 0) {
      return Status::InvalidArgument("cannot free a pinned page");
    }
    DropEntry(page, &it->second);
  }
  return base_->Free(page);
}

void CachingDevice::Touch(PageId page, CacheEntry* entry) {
  lru_.erase(entry->lru_pos);
  lru_.push_front(page);
  entry->lru_pos = lru_.begin();
}

void CachingDevice::DropEntry(PageId page, CacheEntry* entry) {
  counters_.AdjustSpace(DataClass::kAux, -static_cast<int64_t>(block_size()));
  lru_.erase(entry->lru_pos);
  entries_.erase(page);
}

Status CachingDevice::EvictDownTo(size_t target) {
  while (entries_.size() > target) {
    // LRU-first scan for an unpinned victim; pinned entries must stay at a
    // stable address, so they are skipped (transient capacity overshoot).
    auto victim = lru_.rbegin();
    while (victim != lru_.rend() && entries_.at(*victim).pins != 0) {
      ++victim;
    }
    if (victim == lru_.rend()) return Status::OK();
    PageId page = *victim;
    CacheEntry& entry = entries_.at(page);
    if (entry.dirty) {
      Status s = base_->Write(page, entry.bytes);
      if (!s.ok()) {
        // Name the victim: the caller's op (an unrelated insert or unpin)
        // is not the page whose write-back actually failed.
        return StatusBuilder(s).Op("EvictDownTo write-back").Page(page);
      }
    }
    DropEntry(page, &entry);
  }
  return Status::OK();
}

Status CachingDevice::InsertEntry(PageId page, std::vector<uint8_t> bytes,
                                  bool dirty) {
  if (capacity_pages_ == 0) {
    // Degenerate cache: write-through, cache nothing.
    if (dirty) return base_->Write(page, bytes);
    return Status::OK();
  }
  if (entries_.size() >= capacity_pages_) {
    Status s = EvictDownTo(capacity_pages_ - 1);
    if (!s.ok()) return s;
  }
  lru_.push_front(page);
  CacheEntry entry;
  entry.bytes = std::move(bytes);
  entry.dirty = dirty;
  entry.lru_pos = lru_.begin();
  entries_.emplace(page, std::move(entry));
  counters_.AdjustSpace(DataClass::kAux, static_cast<int64_t>(block_size()));
  return Status::OK();
}

CachingDevice::CacheEntry* CachingDevice::InsertPinnedEntry(
    PageId page, std::vector<uint8_t> bytes, bool speculative, Status* s) {
  // Unlike the copy path, pins always need a resident entry -- even at
  // capacity 0, where the entry lives only for the pin window and is
  // trimmed away (write-back if dirty) when the last pin releases.
  if (capacity_pages_ > 0 && entries_.size() >= capacity_pages_) {
    *s = EvictDownTo(capacity_pages_ - 1);
    if (!s->ok()) return nullptr;
  }
  lru_.push_front(page);
  CacheEntry entry;
  entry.bytes = std::move(bytes);
  entry.pins = 1;
  entry.speculative = speculative;
  entry.lru_pos = lru_.begin();
  CacheEntry* inserted = &entries_.emplace(page, std::move(entry)).first->second;
  counters_.AdjustSpace(DataClass::kAux, static_cast<int64_t>(block_size()));
  ++pins_outstanding_;
  *s = Status::OK();
  return inserted;
}

Status CachingDevice::Read(PageId page, std::vector<uint8_t>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    ++hits_;
    // Served at this level: charge the cache, not the device below.
    counters_.OnRead(DataClass::kAux, block_size());
    counters_.OnBlockRead();
    Touch(page, &it->second);
    *out = it->second.bytes;
    return Status::OK();
  }
  ++misses_;
  Status s = base_->Read(page, out);
  if (!s.ok()) return s;
  return InsertEntry(page, *out, /*dirty=*/false);
}

Status CachingDevice::Write(PageId page, const std::vector<uint8_t>& data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (data.size() != block_size()) {
    return Status::InvalidArgument("write size must equal block size");
  }
  counters_.OnWrite(DataClass::kAux, block_size());
  counters_.OnBlockWrite();
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    it->second.bytes = data;
    it->second.dirty = true;
    Touch(page, &it->second);
    return Status::OK();
  }
  return InsertEntry(page, data, /*dirty=*/true);
}

Status CachingDevice::PinForRead(PageId page, PageReadGuard* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    ++hits_;
    // Served at this level: charge the cache, not the device below.
    counters_.OnRead(DataClass::kAux, block_size());
    counters_.OnBlockRead();
    Touch(page, &it->second);
    ++it->second.pins;
    ++pins_outstanding_;
    *out = MakeReadGuard(this, page, it->second.bytes.data(), block_size());
    return Status::OK();
  }
  ++misses_;
  std::vector<uint8_t> bytes;
  Status s = base_->Read(page, &bytes);
  if (!s.ok()) return s;
  CacheEntry* entry =
      InsertPinnedEntry(page, std::move(bytes), /*speculative=*/false, &s);
  if (entry == nullptr) return s;
  *out = MakeReadGuard(this, page, entry->bytes.data(), block_size());
  return Status::OK();
}

Status CachingDevice::PinForWrite(PageId page, PageWriteGuard* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    Touch(page, &it->second);
    ++it->second.pins;
    ++pins_outstanding_;
    *out = MakeWriteGuard(this, page, it->second.bytes.data(), block_size());
    return Status::OK();
  }
  // Blind write pin: hand out a zeroed block without faulting the page in,
  // mirroring the copy path's Write-on-miss (no base read is charged).
  Status s;
  CacheEntry* entry = InsertPinnedEntry(page, std::vector<uint8_t>(block_size(), 0),
                                        /*speculative=*/true, &s);
  if (entry == nullptr) return s;
  *out = MakeWriteGuard(this, page, entry->bytes.data(), block_size());
  return Status::OK();
}

void CachingDevice::UnpinRead(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(page);
  if (it == entries_.end() || it->second.pins == 0) {
    return;  // Post-crash abandoned guard.
  }
  --it->second.pins;
  --pins_outstanding_;
  if (it->second.pins == 0) {
    // Trim any pin-induced overshoot. A failed write-back here simply
    // leaves the dirty victim cached; it retries on the next eviction.
    EvictDownTo(capacity_pages_);
  }
}

Status CachingDevice::UnpinWrite(PageId page, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(page);
  if (it == entries_.end() || it->second.pins == 0) {
    return Status::OK();  // Post-crash abandoned guard.
  }
  CacheEntry& entry = it->second;
  --entry.pins;
  --pins_outstanding_;
  if (dirty) {
    // The write lands at this level; charge it here exactly like Write.
    counters_.OnWrite(DataClass::kAux, block_size());
    counters_.OnBlockWrite();
    entry.dirty = true;
    entry.speculative = false;
  } else if (entry.speculative && entry.pins == 0) {
    // A missed write pin released clean never became real data; drop it so
    // later reads are not served zeros.
    DropEntry(page, &entry);
    return Status::OK();
  }
  if (entry.pins == 0) {
    return EvictDownTo(capacity_pages_);
  }
  return Status::OK();
}

Status CachingDevice::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [page, entry] : entries_) {
    if (entry.dirty) {
      Status s = base_->Write(page, entry.bytes);
      if (!s.ok()) {
        return StatusBuilder(s).Op("FlushAll write-back").Page(page);
      }
      entry.dirty = false;
    }
  }
  return base_->FlushAll();
}

void CachingDevice::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  // All buffered state -- dirty or clean -- is volatile at this level;
  // releasing it adjusts this level's resident space back down. Dirty bytes
  // that never reached the base are simply lost, which is the point.
  counters_.AdjustSpace(
      DataClass::kAux,
      -static_cast<int64_t>(entries_.size() * block_size()));
  entries_.clear();
  lru_.clear();
  pins_outstanding_ = 0;
  base_->Crash();
}

}  // namespace rum

#include "storage/caching_device.h"

#include <cassert>
#include <utility>

namespace rum {

CachingDevice::CachingDevice(Device* base, size_t capacity_pages)
    : base_(base), capacity_pages_(capacity_pages) {
  assert(base_ != nullptr);
}

PageId CachingDevice::Allocate(DataClass cls) {
  std::lock_guard<std::mutex> lock(mu_);
  return base_->Allocate(cls);
}

size_t CachingDevice::cached_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t CachingDevice::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t CachingDevice::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

Status CachingDevice::Free(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    counters_.AdjustSpace(DataClass::kAux,
                          -static_cast<int64_t>(block_size()));
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  return base_->Free(page);
}

void CachingDevice::Touch(PageId page, CacheEntry* entry) {
  lru_.erase(entry->lru_pos);
  lru_.push_front(page);
  entry->lru_pos = lru_.begin();
}

Status CachingDevice::EvictOne() {
  assert(!lru_.empty());
  PageId victim = lru_.back();
  auto it = entries_.find(victim);
  assert(it != entries_.end());
  if (it->second.dirty) {
    Status s = base_->Write(victim, it->second.bytes);
    if (!s.ok()) return s;
  }
  counters_.AdjustSpace(DataClass::kAux, -static_cast<int64_t>(block_size()));
  lru_.pop_back();
  entries_.erase(it);
  return Status::OK();
}

Status CachingDevice::InsertEntry(PageId page, std::vector<uint8_t> bytes,
                                  bool dirty) {
  if (capacity_pages_ == 0) {
    // Degenerate cache: write-through, cache nothing.
    if (dirty) return base_->Write(page, bytes);
    return Status::OK();
  }
  while (entries_.size() >= capacity_pages_) {
    Status s = EvictOne();
    if (!s.ok()) return s;
  }
  lru_.push_front(page);
  CacheEntry entry;
  entry.bytes = std::move(bytes);
  entry.dirty = dirty;
  entry.lru_pos = lru_.begin();
  entries_.emplace(page, std::move(entry));
  counters_.AdjustSpace(DataClass::kAux, static_cast<int64_t>(block_size()));
  return Status::OK();
}

Status CachingDevice::Read(PageId page, std::vector<uint8_t>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    ++hits_;
    // Served at this level: charge the cache, not the device below.
    counters_.OnRead(DataClass::kAux, block_size());
    counters_.OnBlockRead();
    Touch(page, &it->second);
    *out = it->second.bytes;
    return Status::OK();
  }
  ++misses_;
  Status s = base_->Read(page, out);
  if (!s.ok()) return s;
  return InsertEntry(page, *out, /*dirty=*/false);
}

Status CachingDevice::Write(PageId page, const std::vector<uint8_t>& data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (data.size() != block_size()) {
    return Status::InvalidArgument("write size must equal block size");
  }
  counters_.OnWrite(DataClass::kAux, block_size());
  counters_.OnBlockWrite();
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    it->second.bytes = data;
    it->second.dirty = true;
    Touch(page, &it->second);
    return Status::OK();
  }
  return InsertEntry(page, data, /*dirty=*/true);
}

Status CachingDevice::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [page, entry] : entries_) {
    if (entry.dirty) {
      Status s = base_->Write(page, entry.bytes);
      if (!s.ok()) return s;
      entry.dirty = false;
    }
  }
  return base_->FlushAll();
}

}  // namespace rum

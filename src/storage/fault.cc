#include "storage/fault.h"

namespace rum {

std::string_view FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kRead:
      return "Read";
    case FaultOp::kWrite:
      return "Write";
    case FaultOp::kPin:
      return "Pin";
    case FaultOp::kAllocate:
      return "Allocate";
    case FaultOp::kFlush:
      return "Flush";
  }
  return "?";
}

FaultPlan FaultPlan::Transient(uint64_t seed, double rate) {
  FaultPlan plan;
  plan.seed = seed;
  plan.transient_rate.fill(rate);
  return plan;
}

bool FaultPlan::active() const {
  if (fail_after_io != kNever) return true;
  for (double rate : transient_rate) {
    if (rate > 0.0) return true;
  }
  return false;
}

namespace {
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

bool FaultDraw(uint64_t seed, FaultOp op, uint64_t index, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  uint64_t h = SplitMix64(seed ^ SplitMix64((static_cast<uint64_t>(op) << 56) ^
                                            (index + 1)));
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

}  // namespace rum

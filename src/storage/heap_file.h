#ifndef RUMLAB_STORAGE_HEAP_FILE_H_
#define RUMLAB_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/counters.h"
#include "core/status.h"
#include "core/types.h"
#include "storage/device.h"

namespace rum {

/// Position of a row inside a HeapFile.
using RowId = uint64_t;
inline constexpr RowId kInvalidRowId = static_cast<RowId>(-1);

/// An unordered collection of entries in device pages -- the classic heap
/// file, used as the base-data organization for the unsorted column, the
/// hash index, and the bitmap index.
///
/// Rows are addressed by a stable RowId (page index x page capacity + slot).
/// Appends buffer into a tail image so each page is written once when it
/// fills (plus once per Flush of a partial tail); positional reads and
/// in-place updates touch exactly one page.
class HeapFile {
 public:
  /// Stores pages of class `cls` on `device`; `counters` (borrowed) is
  /// charged for reads served from the buffered tail. `pinned_pages`
  /// selects zero-copy pin/unpin page access over whole-block copies (both
  /// produce identical accounting).
  HeapFile(Device* device, DataClass cls, RumCounters* counters,
           bool pinned_pages = true);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  ~HeapFile();

  /// Appends an entry, returning its RowId.
  Result<RowId> Append(const Entry& entry);

  /// Reads the entry at `row` (one page read; tail rows served from memory
  /// and charged by bytes).
  Result<Entry> At(RowId row);

  /// Overwrites the entry at `row` in place (read-modify-write of one page
  /// for sealed pages; a byte-level write for tail rows).
  Status Set(RowId row, const Entry& entry);

  /// Removes the *last* row (used by swap-with-last deletion).
  Status PopBack();

  /// Visits every row in position order; charges the full scan.
  Status ForEach(
      const std::function<Status(RowId, const Entry&)>& visit);

  /// Visits only the rows on the pages that contain the given sorted,
  /// deduplicated row list (one page read per distinct page).
  Status ForRows(const std::vector<RowId>& rows,
                 const std::function<Status(RowId, const Entry&)>& visit);

  /// Writes the partial tail page to the device.
  Status Flush();

  /// Frees all pages.
  Status Clear();

  uint64_t row_count() const { return row_count_; }
  size_t rows_per_page() const { return rows_per_page_; }
  size_t page_count() const {
    return sealed_.size() + (tail_.empty() ? 0 : 1);
  }

 private:
  Status WriteTail();
  Status LoadPage(size_t page_index, std::vector<Entry>* out);

  Device* device_;  // Not owned.
  DataClass cls_;
  RumCounters* counters_;  // Not owned.
  bool pinned_pages_;
  size_t rows_per_page_;
  std::vector<PageId> sealed_;  // Full pages.
  std::vector<Entry> tail_;     // Rows not yet sealed.
  PageId tail_page_ = kInvalidPageId;
  uint64_t row_count_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_STORAGE_HEAP_FILE_H_

#include "storage/append_log.h"

#include <cassert>
#include <cstring>

#include "storage/page_format.h"

namespace rum {

namespace {
// Tail/log page layout: [0,8) record count, then packed records.
constexpr size_t kLogHeaderSize = sizeof(uint64_t);
}  // namespace

AppendLog::AppendLog(Device* device, DataClass cls, RumCounters* counters,
                     bool pinned_pages)
    : device_(device),
      cls_(cls),
      counters_(counters),
      pinned_pages_(pinned_pages) {
  assert(device_ != nullptr && counters_ != nullptr);
  records_per_block_ =
      (device_->block_size() - kLogHeaderSize) / LogRecord::kWireSize;
  assert(records_per_block_ > 0);
}

AppendLog::~AppendLog() = default;

void AppendLog::EncodeRecord(const LogRecord& r, uint8_t* dst) {
  EncodeU64(r.key, dst);
  EncodeU64(r.value, dst + 8);
  dst[16] = static_cast<uint8_t>(r.op);
}

LogRecord AppendLog::DecodeRecord(const uint8_t* src) {
  LogRecord r;
  r.key = DecodeU64(src);
  r.value = DecodeU64(src + 8);
  r.op = static_cast<LogOp>(src[16]);
  return r;
}

Status AppendLog::Append(const LogRecord& record) {
  if (tail_page_ == kInvalidPageId) {
    Status s = device_->Allocate(cls_, &tail_page_);
    if (!s.ok()) return s;
  }
  tail_.push_back(record);
  ++record_count_;
  if (tail_.size() == records_per_block_) {
    Status s = Flush();
    if (!s.ok()) return s;
    pages_.push_back(tail_page_);
    tail_page_ = kInvalidPageId;
    tail_.clear();
  }
  return Status::OK();
}

Status AppendLog::Flush() {
  if (tail_.empty() || tail_page_ == kInvalidPageId) return Status::OK();
  if (pinned_pages_) {
    PageWriteGuard guard;
    Status s = device_->PinForWrite(tail_page_, &guard);
    if (!s.ok()) return s;
    uint8_t* block = guard.bytes().data();
    std::memset(block, 0, guard.bytes().size());
    EncodeU64(tail_.size(), block);
    uint8_t* cursor = block + kLogHeaderSize;
    for (const LogRecord& r : tail_) {
      EncodeRecord(r, cursor);
      cursor += LogRecord::kWireSize;
    }
    guard.MarkDirty();
    return guard.Release();
  }
  std::vector<uint8_t> block(device_->block_size(), 0);
  EncodeU64(tail_.size(), block.data());
  uint8_t* cursor = block.data() + kLogHeaderSize;
  for (const LogRecord& r : tail_) {
    EncodeRecord(r, cursor);
    cursor += LogRecord::kWireSize;
  }
  return device_->Write(tail_page_, block);
}

Status AppendLog::ForEach(
    const std::function<Status(const LogRecord&)>& visit) const {
  // Decoded into a per-call scratch so the pin is released before the
  // visitor runs (visitors may touch the device themselves).
  std::vector<LogRecord> records;
  records.reserve(records_per_block_);
  std::vector<uint8_t> block;
  for (PageId page : pages_) {
    const uint8_t* data = nullptr;
    PageReadGuard guard;
    if (pinned_pages_) {
      Status s = device_->PinForRead(page, &guard);
      if (!s.ok()) return s;
      data = guard.bytes().data();
    } else {
      Status s = device_->Read(page, &block);
      if (!s.ok()) return s;
      data = block.data();
    }
    uint64_t n = DecodeU64(data);
    const uint8_t* cursor = data + kLogHeaderSize;
    records.clear();
    for (uint64_t i = 0; i < n; ++i) {
      records.push_back(DecodeRecord(cursor));
      cursor += LogRecord::kWireSize;
    }
    guard.Release();
    for (const LogRecord& r : records) {
      Status s = visit(r);
      if (!s.ok()) return s;
    }
  }
  // Records still buffered in the tail are served from memory; charge their
  // bytes as a read at this level.
  if (!tail_.empty()) {
    counters_->OnRead(cls_, tail_.size() * LogRecord::kWireSize);
    for (const LogRecord& r : tail_) {
      Status s = visit(r);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status AppendLog::Clear() {
  for (PageId page : pages_) {
    Status s = device_->Free(page);
    if (!s.ok()) return s;
  }
  pages_.clear();
  if (tail_page_ != kInvalidPageId) {
    Status s = device_->Free(tail_page_);
    if (!s.ok()) return s;
    tail_page_ = kInvalidPageId;
  }
  tail_.clear();
  record_count_ = 0;
  return Status::OK();
}

}  // namespace rum

#ifndef RUMLAB_STORAGE_CACHING_DEVICE_H_
#define RUMLAB_STORAGE_CACHING_DEVICE_H_

#include <cstddef>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/counters.h"
#include "core/memory_budget.h"
#include "core/metrics.h"
#include "core/status.h"
#include "core/types.h"
#include "storage/device.h"

namespace rum {

/// An LRU write-back cache stacked on another Device -- one level of the
/// paper's Figure-2 memory hierarchy.
///
/// Accounting model: traffic served from this level is charged to this
/// level's own RumCounters; misses and write-backs propagate to the
/// underlying device, which charges *its* counters. The cache's resident
/// bytes (its memory overhead MO at level n-1) are reported in this level's
/// counters as auxiliary space.
///
/// Thread safety: one internal mutex serializes every operation (LRU lists
/// do not shard well), so a CachingDevice may be shared by concurrent
/// access-method shards. Calls into the base device happen under that lock,
/// serializing the whole stack beneath this level. Pins hold the lock only
/// for the lookup/insert, not for the caller's whole critical section, so
/// concurrent callers must touch disjoint pages while pinned (the
/// ShardedMethod partitioning guarantees exactly that).
///
/// Pinned entries are excluded from eviction, so a burst of pins can push
/// residency transiently above `capacity_pages`; the overshoot is trimmed
/// back as pins release.
class CachingDevice : public Device, public MemoryPool {
 public:
  /// Wraps `base` (borrowed, must outlive this) with an LRU cache holding at
  /// most `capacity_pages` page copies. With a non-null `registrar` the
  /// cache registers itself as a resizable kCache memory pool (global
  /// memory arbitration; see core/memory_budget.h) and ticks the
  /// registrar's epoch clock once per cache operation -- always after
  /// releasing the internal lock, because a replan triggered by the tick
  /// calls back into SetCapacity.
  CachingDevice(Device* base, size_t capacity_pages,
                MemoryRegistrar* registrar = nullptr);

  ~CachingDevice() override;

  Status Allocate(DataClass cls, PageId* out) override;
  Status Free(PageId page) override;
  Status Read(PageId page, std::vector<uint8_t>* out) override;
  Status Write(PageId page, const std::vector<uint8_t>& data) override;
  Status FlushAll() override;

  /// Pins the cache entry for `page` (faulting it in from the base device
  /// on a miss) and returns a view of its bytes. A hit charges this level's
  /// counters exactly like a cache-hit Read; a miss charges only the base.
  Status PinForRead(PageId page, PageReadGuard* out) override;

  /// Pins the cache entry for `page` for in-place mutation. On a miss the
  /// entry is zero-filled WITHOUT reading the base device (matching the
  /// accounting of a blind Write), so callers must fully overwrite the
  /// block unless the page is simultaneously read-pinned or already cached.
  /// The cache-level write charge lands at the guard's dirty release; a
  /// clean release of a missed pin drops the speculative entry unchanged.
  Status PinForWrite(PageId page, PageWriteGuard* out) override;

  /// Crash simulation: every cached entry -- dirty or clean -- vanishes
  /// without write-back, open pins are abandoned (late guard releases are
  /// no-ops), and the crash propagates to the device below. Only state that
  /// reached the bottom of the stack survives.
  void Crash() override;

  size_t block_size() const override { return base_->block_size(); }
  size_t live_pages() const override { return base_->live_pages(); }

  /// This cache level's own accounting (hits served, resident bytes).
  CounterSnapshot level_stats() const { return counters_.snapshot(); }
  void ResetLevelStats() { counters_.ResetTraffic(); }

  /// Retargets the cache to hold at most `capacity_pages` entries, trimming
  /// immediately with the pin-safe skip-and-continue eviction sweep. Pinned
  /// entries are never touched: a shrink below the pinned population leaves
  /// residency transiently above the new cap, and the standard
  /// unpin-time trim (UnpinRead/UnpinWrite) converges it as pins release.
  /// Returns non-OK (the first write-back failure) only when dirty-victim
  /// write-back faults kept residency above the new cap; the capacity
  /// itself is always updated.
  Status SetCapacity(size_t capacity_pages);

  // MemoryPool (the global arbiter's resize surface): assigned bytes are
  // capacity * block_size; the benefit signal is miss bytes (every miss is
  // base-device traffic more capacity might have absorbed).
  std::string_view pool_name() const override { return "caching_device"; }
  MemoryPoolKind pool_kind() const override { return MemoryPoolKind::kCache; }
  uint64_t pool_bytes() const override;
  void SetPoolBytes(uint64_t bytes) override;
  uint64_t BenefitSignal() const override;

  size_t capacity_pages() const;
  size_t cached_pages() const;
  uint64_t hits() const;
  uint64_t misses() const;
  /// Entries dropped from the cache by eviction sweeps.
  uint64_t evictions() const;
  /// Dirty victims successfully written back (by eviction or FlushAll).
  uint64_t write_backs() const;
  /// Dirty-victim write-backs that failed during eviction sweeps; the
  /// victim stays cached and the sweep moves on to the next candidate.
  uint64_t write_back_failures() const;

  /// Cached pages currently pinned (tests / debugging).
  size_t pinned_pages() const;

 protected:
  void UnpinRead(PageId page) override;
  Status UnpinWrite(PageId page, bool dirty) override;

 private:
  struct CacheEntry {
    std::vector<uint8_t> bytes;
    bool dirty = false;
    uint32_t pins = 0;
    /// Created by a missed write pin: contents are not backed by the base
    /// device until a dirty release lands; dropped on a clean release.
    bool speculative = false;
    /// Steady-clock stamp of the 0->1 pin, read only while tracing, so a
    /// kPinRelease event can carry the held duration.
    uint64_t pinned_at_ns = 0;
    std::list<PageId>::iterator lru_pos;
  };

  /// Moves `page` to the MRU position.
  void Touch(PageId page, CacheEntry* entry);
  /// One LRU-to-MRU eviction sweep (writing back dirty victims) until at
  /// most `target` entries remain. Pinned entries and victims whose dirty
  /// write-back fails are *skipped*, not sweep-ending: a single unwritable
  /// page cannot wedge eviction while clean victims exist. Returns non-OK
  /// (the first write-back failure) only when failures left the cache above
  /// `target`; an all-pinned overshoot still returns OK.
  Status EvictDownTo(size_t target);
  /// Inserts a page copy, evicting as needed.
  Status InsertEntry(PageId page, std::vector<uint8_t> bytes, bool dirty);
  /// Inserts a pinned entry for the pin path; may overshoot capacity when
  /// eviction candidates are all pinned. Returns the entry or nullptr on a
  /// write-back failure during eviction (status in `*s`).
  CacheEntry* InsertPinnedEntry(PageId page, std::vector<uint8_t> bytes,
                                bool speculative, Status* s);
  /// Removes `entry` from the map and LRU list, releasing its space.
  /// Returns the LRU-list iterator following the removed position, so an
  /// eviction sweep can keep walking.
  std::list<PageId>::iterator DropEntry(PageId page, CacheEntry* entry);
  /// Emits the one-shot kRecovery event on the first operation after a
  /// Crash(). Call with mu_ held.
  void NoteRecoveryLocked();
  /// Ticks the registrar's epoch clock. MUST be called with mu_ released:
  /// a replan fired by the tick re-enters SetCapacity, which locks mu_.
  void TickRegistrar();

  Device* base_;  // Not owned.
  MemoryRegistrar* registrar_;  // Not owned; may be null.
  size_t capacity_pages_;
  RumCounters counters_;
  mutable std::mutex mu_;  // Guards everything below (and base_ calls).
  std::unordered_map<PageId, CacheEntry> entries_;
  std::list<PageId> lru_;  // Front = MRU, back = LRU.
  size_t pins_outstanding_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t write_backs_ = 0;
  uint64_t write_back_failures_ = 0;
  bool crashed_ = false;
  /// Last member: unregisters before any state its callbacks read dies.
  MetricsGroup metrics_;
};

}  // namespace rum

#endif  // RUMLAB_STORAGE_CACHING_DEVICE_H_

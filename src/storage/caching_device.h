#ifndef RUMLAB_STORAGE_CACHING_DEVICE_H_
#define RUMLAB_STORAGE_CACHING_DEVICE_H_

#include <cstddef>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/counters.h"
#include "core/status.h"
#include "core/types.h"
#include "storage/device.h"

namespace rum {

/// An LRU write-back cache stacked on another Device -- one level of the
/// paper's Figure-2 memory hierarchy.
///
/// Accounting model: traffic served from this level is charged to this
/// level's own RumCounters; misses and write-backs propagate to the
/// underlying device, which charges *its* counters. The cache's resident
/// bytes (its memory overhead MO at level n-1) are reported in this level's
/// counters as auxiliary space.
///
/// Thread safety: one internal mutex serializes every operation (LRU lists
/// do not shard well), so a CachingDevice may be shared by concurrent
/// access-method shards. Calls into the base device happen under that lock,
/// serializing the whole stack beneath this level.
class CachingDevice : public Device {
 public:
  /// Wraps `base` (borrowed, must outlive this) with an LRU cache holding at
  /// most `capacity_pages` page copies.
  CachingDevice(Device* base, size_t capacity_pages);

  PageId Allocate(DataClass cls) override;
  Status Free(PageId page) override;
  Status Read(PageId page, std::vector<uint8_t>* out) override;
  Status Write(PageId page, const std::vector<uint8_t>& data) override;
  Status FlushAll() override;

  size_t block_size() const override { return base_->block_size(); }
  size_t live_pages() const override { return base_->live_pages(); }

  /// This cache level's own accounting (hits served, resident bytes).
  CounterSnapshot level_stats() const { return counters_.snapshot(); }
  void ResetLevelStats() { counters_.ResetTraffic(); }

  size_t capacity_pages() const { return capacity_pages_; }
  size_t cached_pages() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  struct CacheEntry {
    std::vector<uint8_t> bytes;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;
  };

  /// Moves `page` to the MRU position.
  void Touch(PageId page, CacheEntry* entry);
  /// Evicts the LRU page, writing it back if dirty.
  Status EvictOne();
  /// Inserts a page copy, evicting as needed.
  Status InsertEntry(PageId page, std::vector<uint8_t> bytes, bool dirty);

  Device* base_;  // Not owned.
  size_t capacity_pages_;
  RumCounters counters_;
  mutable std::mutex mu_;  // Guards everything below (and base_ calls).
  std::unordered_map<PageId, CacheEntry> entries_;
  std::list<PageId> lru_;  // Front = MRU, back = LRU.
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_STORAGE_CACHING_DEVICE_H_

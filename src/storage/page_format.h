#ifndef RUMLAB_STORAGE_PAGE_FORMAT_H_
#define RUMLAB_STORAGE_PAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace rum {

/// Serialization of fixed-width Entry records into device blocks.
///
/// Layout of an entry page (little-endian):
///   [0, 8)   uint64   entry count `n`
///   [8, ...) n x { uint64 key, uint64 value }
///
/// The 8-byte header is part of the access method's physical footprint --
/// the kind of small structural overhead the paper's MO accounting charges.
class PageFormat {
 public:
  /// Maximum entries that fit in a page of `block_size` bytes.
  static constexpr size_t CapacityFor(size_t block_size) {
    return (block_size - kHeaderSize) / kEntrySize;
  }

  /// Serializes `entries` into a block of exactly `block_size` bytes.
  /// Fails with kResourceExhausted if they do not fit.
  static Status Pack(std::span<const Entry> entries, size_t block_size,
                     std::vector<uint8_t>* out);

  /// Deserializes a block previously produced by Pack.
  static Status Unpack(const std::vector<uint8_t>& block,
                       std::vector<Entry>* out);

  /// Reads just the entry count from a packed block.
  static size_t PeekCount(const std::vector<uint8_t>& block);

  static constexpr size_t kHeaderSize = sizeof(uint64_t);
};

/// Little-endian scalar helpers shared by all page codecs.
void EncodeU64(uint64_t v, uint8_t* dst);
uint64_t DecodeU64(const uint8_t* src);
void EncodeU32(uint32_t v, uint8_t* dst);
uint32_t DecodeU32(const uint8_t* src);

/// LEB128 varint helpers (used by compressed run pages). EncodeVarint64
/// appends to `out` and returns bytes written; DecodeVarint64 reads from
/// `src`, advances `*offset`, and returns the value (offset clamped to
/// `limit` on malformed input).
size_t EncodeVarint64(uint64_t v, std::vector<uint8_t>* out);
/// Bytes EncodeVarint64 would emit for `v`.
size_t VarintLength(uint64_t v);
uint64_t DecodeVarint64(const uint8_t* src, size_t limit, size_t* offset);

}  // namespace rum

#endif  // RUMLAB_STORAGE_PAGE_FORMAT_H_

#ifndef RUMLAB_STORAGE_PAGE_FORMAT_H_
#define RUMLAB_STORAGE_PAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace rum {

/// Serialization of fixed-width Entry records into device blocks.
///
/// Layout of an entry page (little-endian):
///   [0, 8)   uint64   entry count `n`
///   [8, ...) n x { uint64 key, uint64 value }
///
/// The 8-byte header is part of the access method's physical footprint --
/// the kind of small structural overhead the paper's MO accounting charges.
class PageFormat {
 public:
  /// Maximum entries that fit in a page of `block_size` bytes.
  static constexpr size_t CapacityFor(size_t block_size) {
    return (block_size - kHeaderSize) / kEntrySize;
  }

  /// Serializes `entries` into a block of exactly `block_size` bytes.
  /// Fails with kResourceExhausted if they do not fit.
  static Status Pack(std::span<const Entry> entries, size_t block_size,
                     std::vector<uint8_t>* out);

  /// Serializes `entries` in place into `block` (e.g. a pinned page view),
  /// zero-filling the remainder. Fails with kResourceExhausted if they do
  /// not fit.
  static Status PackInto(std::span<const Entry> entries,
                         std::span<uint8_t> block);

  /// Deserializes a block previously produced by Pack.
  static Status Unpack(std::span<const uint8_t> block, std::vector<Entry>* out);

  /// Reads just the entry count from a packed block. Inline: this and the
  /// single-slot accessors below sit on the per-entry hot path of the
  /// zero-copy pinned-page scans.
  static size_t PeekCount(std::span<const uint8_t> block);

  /// Decodes the `index`-th entry of a packed block without materializing
  /// the rest (zero-copy single-slot read; `index` must be < PeekCount).
  static Entry EntryAt(std::span<const uint8_t> block, size_t index);

  /// Re-encodes just the `index`-th entry of a packed block in place,
  /// leaving the header and all other slots untouched.
  static void SetEntryAt(std::span<uint8_t> block, size_t index,
                         const Entry& entry);

  static constexpr size_t kHeaderSize = sizeof(uint64_t);
};

/// Little-endian scalar helpers shared by all page codecs. Inline so the
/// per-entry decode loops (Unpack, in-place binary searches on pinned
/// pages) do not pay a call per scalar.
inline void EncodeU64(uint64_t v, uint8_t* dst) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

inline uint64_t DecodeU64(const uint8_t* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(src[i]) << (8 * i);
  }
  return v;
}

inline void EncodeU32(uint32_t v, uint8_t* dst) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

inline uint32_t DecodeU32(const uint8_t* src) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(src[i]) << (8 * i);
  }
  return v;
}

inline size_t PageFormat::PeekCount(std::span<const uint8_t> block) {
  if (block.size() < kHeaderSize) return 0;
  return static_cast<size_t>(DecodeU64(block.data()));
}

inline Entry PageFormat::EntryAt(std::span<const uint8_t> block,
                                 size_t index) {
  const uint8_t* slot = block.data() + kHeaderSize + index * kEntrySize;
  Entry e;
  e.key = DecodeU64(slot);
  e.value = DecodeU64(slot + sizeof(uint64_t));
  return e;
}

inline void PageFormat::SetEntryAt(std::span<uint8_t> block, size_t index,
                                   const Entry& entry) {
  uint8_t* slot = block.data() + kHeaderSize + index * kEntrySize;
  EncodeU64(entry.key, slot);
  EncodeU64(entry.value, slot + sizeof(uint64_t));
}

/// LEB128 varint helpers (used by compressed run pages). EncodeVarint64
/// appends to `out` and returns bytes written; DecodeVarint64 reads from
/// `src`, advances `*offset`, and returns the value (offset clamped to
/// `limit` on malformed input).
size_t EncodeVarint64(uint64_t v, std::vector<uint8_t>* out);
/// Bytes EncodeVarint64 would emit for `v`.
size_t VarintLength(uint64_t v);
uint64_t DecodeVarint64(const uint8_t* src, size_t limit, size_t* offset);

}  // namespace rum

#endif  // RUMLAB_STORAGE_PAGE_FORMAT_H_

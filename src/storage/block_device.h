#ifndef RUMLAB_STORAGE_BLOCK_DEVICE_H_
#define RUMLAB_STORAGE_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "core/metrics.h"
#include "core/status.h"
#include "core/types.h"
#include "storage/device.h"

namespace rum {

/// A deterministic simulated block device.
///
/// This is the substrate the paper's cost model assumes: storage with a
/// minimum access granularity (Section 4, "the fundamental assumption that
/// data has a minimum access granularity holds for all storage mediums").
/// Every read or write touches whole blocks and is charged -- in bytes and
/// blocks, tagged base vs auxiliary -- to the RumCounters supplied at
/// construction.
///
/// Pages are allocated with a DataClass tag so space amplification can be
/// derived exactly: resident space is (#allocated pages of class) x
/// block_size.
class BlockDevice : public Device {
 public:
  /// Creates a device with blocks of `block_size` bytes, charging all
  /// traffic to `counters` (borrowed; must outlive the device).
  BlockDevice(size_t block_size, RumCounters* counters);

  /// Allocates a zeroed page of class `cls`; never fails at this level (the
  /// simulated store has no capacity limit -- allocation faults come from a
  /// FaultyDevice stacked on top).
  Status Allocate(DataClass cls, PageId* out) override;

  /// Frees a page; its id may be recycled by later allocations.
  Status Free(PageId page) override;

  /// Reads a whole block into `out` (resized to block_size). Charged as one
  /// block read of the page's class.
  Status Read(PageId page, std::vector<uint8_t>* out) override;

  /// Writes a whole block from `data` (must be exactly block_size bytes).
  /// Charged as one block write of the page's class.
  Status Write(PageId page, const std::vector<uint8_t>& data) override;

  /// No buffering at the bottom of the stack; always OK.
  Status FlushAll() override { return Status::OK(); }

  /// Zero-copy pin straight into the page slot's backing bytes. Charged
  /// exactly like Read (at pin time); the slot cannot be freed while pinned.
  Status PinForRead(PageId page, PageReadGuard* out) override;

  /// Zero-copy mutable pin into the page slot. Nothing is charged until the
  /// guard's dirty release, which is charged exactly like Write.
  Status PinForWrite(PageId page, PageWriteGuard* out) override;

  /// Direct mutable access to a page's backing bytes WITHOUT accounting.
  /// Only for tests and for internal assembly of a block that is charged
  /// separately via Charge{Read,Write}.
  std::vector<uint8_t>* mutable_page_unaccounted(PageId page);
  const std::vector<uint8_t>* page_unaccounted(PageId page) const;

  /// Explicitly charges a block read/write of page `page` without moving
  /// bytes (used by zero-copy in-simulator paths).
  Status ChargeRead(PageId page) const;
  Status ChargeWrite(PageId page);

  /// Reclassifies a live page (e.g. when a buffer becomes part of an index).
  Status Reclassify(PageId page, DataClass cls);

  /// Crash simulation: the bottom of the stack holds no volatile state, so
  /// only open pins are abandoned (their late releases become no-ops).
  void Crash() override;

  size_t block_size() const override { return block_size_; }
  /// Live (allocated, not freed) page count, total and per class.
  size_t live_pages() const override { return live_total_; }
  size_t live_pages(DataClass cls) const {
    return cls == DataClass::kBase ? live_base_ : live_aux_;
  }

  /// Pins currently outstanding across all pages (tests / debugging).
  size_t pinned_pages() const { return pins_outstanding_; }

 protected:
  void UnpinRead(PageId page) override;
  Status UnpinWrite(PageId page, bool dirty) override;

 private:
  struct PageSlot {
    std::vector<uint8_t> bytes;
    DataClass cls = DataClass::kBase;
    bool live = false;
    uint32_t pins = 0;
  };

  Status CheckLive(PageId page) const;

  size_t block_size_;
  RumCounters* counters_;  // Not owned.
  std::vector<PageSlot> pages_;
  std::vector<PageId> free_list_;
  size_t live_total_ = 0;
  size_t live_base_ = 0;
  size_t live_aux_ = 0;
  size_t pins_outstanding_ = 0;
  /// Last member: unregisters before any state its callbacks read dies.
  /// BlockDevice has no internal lock (upper layers serialize access), so
  /// its gauges must only be exported at quiescence.
  MetricsGroup metrics_;
};

}  // namespace rum

#endif  // RUMLAB_STORAGE_BLOCK_DEVICE_H_

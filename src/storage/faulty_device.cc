#include "storage/faulty_device.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/status_builder.h"
#include "core/trace.h"

namespace rum {

namespace {
TraceOp TraceOpFor(FaultOp op) {
  switch (op) {
    case FaultOp::kRead: return TraceOp::kRead;
    case FaultOp::kWrite: return TraceOp::kWrite;
    case FaultOp::kPin: return TraceOp::kPin;
    case FaultOp::kAllocate: return TraceOp::kAllocate;
    case FaultOp::kFlush: return TraceOp::kFlush;
  }
  return TraceOp::kNone;
}
}  // namespace

FaultyDevice::FaultyDevice(Device* base) : base_(base) {
  assert(base_ != nullptr);
  metrics_.Init("faulty_device");
  metrics_.Gauge("faults_injected", [this] { return faults_injected(); });
  metrics_.Gauge("torn_writes", [this] { return torn_writes(); });
  metrics_.Gauge("pinned_pages",
                 [this] { return static_cast<uint64_t>(pinned_pages()); });
}

FaultyDevice::FaultyDevice(Device* base, FaultPlan plan) : FaultyDevice(base) {
  SetPlan(std::move(plan));
}

void FaultyDevice::SetPlan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  io_budget_left_ = plan_.fail_after_io;
  draw_index_.fill(0);
  torn_draw_index_ = 0;
}

const FaultPlan& FaultyDevice::plan() const { return plan_; }

bool FaultyDevice::fault_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_.fail_after_io != FaultPlan::kNever && io_budget_left_ == 0;
}

uint64_t FaultyDevice::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (uint64_t n : injected_) total += n;
  return total;
}

uint64_t FaultyDevice::faults_injected(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_[static_cast<size_t>(op)];
}

uint64_t FaultyDevice::torn_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return torn_writes_;
}

bool FaultyDevice::page_torn(PageId page) const {
  std::lock_guard<std::mutex> lock(mu_);
  return torn_.count(page) != 0;
}

size_t FaultyDevice::pinned_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pins_outstanding_;
}

Status FaultyDevice::MaybeFault(FaultOp op, PageId page, bool counts_io) {
  size_t idx = static_cast<size_t>(op);
  uint64_t draw = draw_index_[idx]++;
  if (FaultDraw(plan_.seed, op, draw, plan_.transient_rate[idx])) {
    ++injected_[idx];
    Trace::Emit(TraceKind::kFaultInjected, TraceOpFor(op), page,
                DataClass::kBase);
    StatusBuilder b(Code::kIOError, "injected transient fault");
    b.Op(FaultOpName(op));
    if (page != kInvalidPageId) b.Page(page);
    return b;
  }
  if (counts_io && plan_.fail_after_io != FaultPlan::kNever) {
    if (io_budget_left_ == 0) {
      ++injected_[idx];
      Trace::Emit(TraceKind::kFaultInjected, TraceOpFor(op), page,
                  DataClass::kBase);
      StatusBuilder b(Code::kIOError, "injected device fault");
      b.Op(FaultOpName(op));
      if (page != kInvalidPageId) b.Page(page);
      return b;
    }
    --io_budget_left_;
  }
  return Status::OK();
}

bool FaultyDevice::DrawTorn() {
  if (plan_.torn_write_rate <= 0.0) return false;
  // An offset seed keeps the torn stream independent of the fault stream.
  return FaultDraw(plan_.seed + 0x7042ULL, FaultOp::kWrite, torn_draw_index_++,
                   plan_.torn_write_rate);
}

void FaultyDevice::FlipTail(std::span<uint8_t> bytes) {
  size_t n = std::min(plan_.torn_tail_bytes, bytes.size());
  for (size_t i = bytes.size() - n; i < bytes.size(); ++i) {
    bytes[i] ^= 0xFF;
  }
}

Status FaultyDevice::TornStatus(PageId page, const char* op) const {
  return StatusBuilder(Code::kCorruption, "checksum mismatch on torn page")
      .Op(op)
      .Page(page);
}

Status FaultyDevice::Allocate(DataClass cls, PageId* out) {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = MaybeFault(FaultOp::kAllocate, kInvalidPageId, false);
  if (!s.ok()) return s;
  s = base_->Allocate(cls, out);
  // A recycled slot comes back zeroed; any old tear is gone.
  if (s.ok()) torn_.erase(*out);
  return s;
}

Status FaultyDevice::Free(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = base_->Free(page);
  if (s.ok()) torn_.erase(page);
  return s;
}

Status FaultyDevice::Read(PageId page, std::vector<uint8_t>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (torn_.count(page) != 0) return TornStatus(page, "Read");
  Status s = MaybeFault(FaultOp::kRead, page, true);
  if (!s.ok()) return s;
  return base_->Read(page, out);
}

Status FaultyDevice::Write(PageId page, const std::vector<uint8_t>& data) {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = MaybeFault(FaultOp::kWrite, page, true);
  if (!s.ok()) {
    if (DrawTorn() && data.size() == base_->block_size()) {
      // The tear lands part of the new image without accounting: mutate the
      // block in place through a clean write-pin release (charges nothing,
      // leaves the mutation visible -- the pin contract's torn analogue).
      PageWriteGuard guard;
      if (base_->PinForWrite(page, &guard).ok()) {
        std::copy(data.begin(), data.end(), guard.bytes().begin());
        FlipTail(guard.bytes());
        guard.Release();  // Clean: uncharged.
        torn_.insert(page);
        ++torn_writes_;
        Trace::Emit(TraceKind::kTornWrite, TraceOp::kWrite, page,
                    DataClass::kBase);
      }
    }
    return s;
  }
  s = base_->Write(page, data);
  if (s.ok()) torn_.erase(page);  // Fully rewritten: checksum valid again.
  return s;
}

Status FaultyDevice::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = MaybeFault(FaultOp::kFlush, kInvalidPageId, false);
  if (!s.ok()) return s;
  return base_->FlushAll();
}

Status FaultyDevice::PinForRead(PageId page, PageReadGuard* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (torn_.count(page) != 0) return TornStatus(page, "PinForRead");
  // Pin-read acquisition is a charged read, so it consumes the budget --
  // exactly like the legacy ChargeRead at pin time.
  Status s = MaybeFault(FaultOp::kPin, page, true);
  if (!s.ok()) return s;
  PageReadGuard base_guard;
  s = base_->PinForRead(page, &base_guard);
  if (!s.ok()) return s;
  std::span<const uint8_t> bytes = base_guard.bytes();
  pins_[page].read_guards.push_back(std::move(base_guard));
  ++pins_outstanding_;
  *out = MakeReadGuard(this, page, bytes.data(), bytes.size());
  return Status::OK();
}

Status FaultyDevice::PinForWrite(PageId page, PageWriteGuard* out) {
  std::lock_guard<std::mutex> lock(mu_);
  // Write-pin acquisition charges nothing, so it cannot consume the budget;
  // the write-class fault waits at the dirty release.
  Status s = MaybeFault(FaultOp::kPin, page, false);
  if (!s.ok()) return s;
  PageWriteGuard base_guard;
  s = base_->PinForWrite(page, &base_guard);
  if (!s.ok()) return s;
  std::span<uint8_t> bytes = base_guard.bytes();
  pins_[page].write_guards.push_back(std::move(base_guard));
  ++pins_outstanding_;
  *out = MakeWriteGuard(this, page, bytes.data(), bytes.size());
  return Status::OK();
}

void FaultyDevice::UnpinRead(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(page);
  if (it == pins_.end() || it->second.read_guards.empty()) {
    return;  // Post-crash abandoned guard.
  }
  it->second.read_guards.pop_back();  // Releases the base pin.
  --pins_outstanding_;
  if (it->second.read_guards.empty() && it->second.write_guards.empty()) {
    pins_.erase(it);
  }
}

Status FaultyDevice::UnpinWrite(PageId page, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(page);
  if (it == pins_.end() || it->second.write_guards.empty()) {
    return Status::OK();  // Post-crash abandoned guard.
  }
  PageWriteGuard base_guard = std::move(it->second.write_guards.back());
  it->second.write_guards.pop_back();
  --pins_outstanding_;
  if (it->second.read_guards.empty() && it->second.write_guards.empty()) {
    pins_.erase(it);
  }
  if (!dirty) return base_guard.Release();  // Clean through and through.
  Status s = MaybeFault(FaultOp::kWrite, page, true);
  if (!s.ok()) {
    // The failed dirty release: the caller's in-place mutations stay
    // visible and uncharged. A torn draw additionally flips the tail and
    // poisons the page so no read can silently serve it.
    if (DrawTorn()) {
      FlipTail(base_guard.bytes());
      torn_.insert(page);
      ++torn_writes_;
      Trace::Emit(TraceKind::kTornWrite, TraceOp::kWrite, page,
                  DataClass::kBase);
    }
    base_guard.Release();  // Clean: uncharged.
    return s;
  }
  base_guard.MarkDirty();
  s = base_guard.Release();
  if (s.ok()) torn_.erase(page);  // Fully rewritten in place.
  return s;
}

void FaultyDevice::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  Trace::Emit(TraceKind::kCrash, TraceOp::kNone, kInvalidPageId,
              DataClass::kBase, pins_outstanding_);
  // Drop this level's pin bookkeeping first (releasing the base pins while
  // the base is still pre-crash), then crash the levels below. Torn pages
  // stay poisoned: the damage is on the durable medium.
  pins_.clear();
  pins_outstanding_ = 0;
  base_->Crash();
}

}  // namespace rum

#include "storage/page_format.h"

#include <cstring>

namespace rum {

size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

size_t EncodeVarint64(uint64_t v, std::vector<uint8_t>* out) {
  size_t n = 0;
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
    ++n;
  }
  out->push_back(static_cast<uint8_t>(v));
  return n + 1;
}

uint64_t DecodeVarint64(const uint8_t* src, size_t limit, size_t* offset) {
  uint64_t v = 0;
  int shift = 0;
  while (*offset < limit && shift <= 63) {
    uint8_t byte = src[(*offset)++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return v;  // Malformed input: best-effort value, offset at limit.
}

Status PageFormat::Pack(std::span<const Entry> entries, size_t block_size,
                        std::vector<uint8_t>* out) {
  if (entries.size() > CapacityFor(block_size)) {
    return Status::ResourceExhausted("entries do not fit in one block");
  }
  out->resize(block_size);
  return PackInto(entries, *out);
}

Status PageFormat::PackInto(std::span<const Entry> entries,
                            std::span<uint8_t> block) {
  if (entries.size() > CapacityFor(block.size())) {
    return Status::ResourceExhausted("entries do not fit in one block");
  }
  std::memset(block.data(), 0, block.size());
  EncodeU64(entries.size(), block.data());
  uint8_t* cursor = block.data() + kHeaderSize;
  for (const Entry& e : entries) {
    EncodeU64(e.key, cursor);
    EncodeU64(e.value, cursor + sizeof(uint64_t));
    cursor += kEntrySize;
  }
  return Status::OK();
}

Status PageFormat::Unpack(std::span<const uint8_t> block,
                          std::vector<Entry>* out) {
  if (block.size() < kHeaderSize) {
    return Status::Corruption("block smaller than page header");
  }
  uint64_t n = DecodeU64(block.data());
  if (kHeaderSize + n * kEntrySize > block.size()) {
    return Status::Corruption("entry count exceeds block capacity");
  }
  out->clear();
  out->reserve(n);
  const uint8_t* cursor = block.data() + kHeaderSize;
  for (uint64_t i = 0; i < n; ++i) {
    Entry e;
    e.key = DecodeU64(cursor);
    e.value = DecodeU64(cursor + sizeof(uint64_t));
    out->push_back(e);
    cursor += kEntrySize;
  }
  return Status::OK();
}

}  // namespace rum

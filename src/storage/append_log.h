#ifndef RUMLAB_STORAGE_APPEND_LOG_H_
#define RUMLAB_STORAGE_APPEND_LOG_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/counters.h"
#include "core/status.h"
#include "core/types.h"
#include "storage/device.h"

namespace rum {

/// Operation carried by one log record.
enum class LogOp : uint8_t {
  kPut = 0,
  kDelete = 1,
};

/// One record of an append-only log: an upsert or a tombstone.
struct LogRecord {
  Key key = 0;
  Value value = 0;
  LogOp op = LogOp::kPut;

  /// On-device footprint of one record: key + value + op byte.
  static constexpr size_t kWireSize = sizeof(Key) + sizeof(Value) + 1;
};

/// An append-only log of records on a Device -- the substrate for the
/// paper's Proposition-2 structure (min UO = 1.0) and for every
/// differential/write-optimized method built here.
///
/// Records are buffered in a tail image and each device block is written
/// exactly once, when it fills (or on Flush), so the amortized write
/// amplification of appending approaches 1.0 -- the paper's lower bound.
class AppendLog {
 public:
  /// Creates a log storing pages of class `cls` on `device`. `counters`
  /// (borrowed) is charged for reads served from the buffered tail.
  /// `pinned_pages` selects zero-copy pin/unpin page access over
  /// whole-block copies (both produce identical accounting).
  AppendLog(Device* device, DataClass cls, RumCounters* counters,
            bool pinned_pages = true);

  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  ~AppendLog();

  /// Appends one record. Writes a device block only when the tail fills.
  Status Append(const LogRecord& record);

  /// Writes the partially-filled tail block (if any) to the device.
  Status Flush();

  /// Iterates all records in append order, charging device reads for full
  /// blocks and tail-byte reads to the counters. Stops early on non-OK.
  Status ForEach(
      const std::function<Status(const LogRecord&)>& visit) const;

  /// Frees every page and clears the tail (log truncation).
  Status Clear();

  /// Total records appended and still in the log.
  uint64_t record_count() const { return record_count_; }
  /// Full device pages currently held.
  size_t page_count() const { return pages_.size(); }
  /// Records per device block.
  size_t records_per_block() const { return records_per_block_; }

 private:
  static void EncodeRecord(const LogRecord& r, uint8_t* dst);
  static LogRecord DecodeRecord(const uint8_t* src);

  Device* device_;  // Not owned.
  DataClass cls_;
  RumCounters* counters_;  // Not owned.
  bool pinned_pages_;
  size_t records_per_block_;
  std::vector<PageId> pages_;          // Sealed, full pages.
  std::vector<LogRecord> tail_;        // Buffered records not yet sealed.
  PageId tail_page_ = kInvalidPageId;  // Allocated lazily for the tail.
  uint64_t record_count_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_STORAGE_APPEND_LOG_H_

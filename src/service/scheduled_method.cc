#include "service/scheduled_method.h"

#include <utility>

#include "core/trace.h"

namespace rum {

ScheduledMethod::ScheduledMethod(std::unique_ptr<AccessMethod> inner,
                                 const Options& options)
    : inner_(std::move(inner)),
      opts_(options.service),
      bucket_(opts_.rate_ops_per_sec, opts_.rate_burst_ops) {
  metrics_.Init("scheduler");
  metrics_.Gauge("submitted", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.submitted;
  });
  metrics_.Gauge("shed", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.shed;
  });
  metrics_.Gauge("completed", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.completed;
  });
  metrics_.Histogram("total_us", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.total_us;
  });
}

size_t ScheduledMethod::partitions() const {
  auto* kp = dynamic_cast<const KeyPartitioned*>(inner_.get());
  return kp != nullptr ? kp->partitions() : 1;
}

size_t ScheduledMethod::PartitionOf(Key key) const {
  auto* kp = dynamic_cast<const KeyPartitioned*>(inner_.get());
  return kp != nullptr ? kp->PartitionOf(key) : 0;
}

ServiceStats ScheduledMethod::service_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool ScheduledMethod::Admit(bool is_scan, uint64_t* cost_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  uint64_t arrival = now_us_;
  if (opts_.admission && !bucket_.TryAcquire(arrival)) {
    ++stats_.shed;
    ++stats_.shed_rate_gate;
    Trace::Emit(TraceKind::kSchedShed, TraceOp::kNone, kInvalidPageId,
                DataClass::kBase, 0);
    return false;
  }
  ++stats_.accepted;
  // Closed loop: the caller waits for us, so the queue is empty, sojourn is
  // zero, and every call dispatches immediately as a batch of one.
  *cost_us = opts_.dispatch_overhead_us +
             (is_scan ? opts_.scan_cost_us : opts_.op_cost_us);
  now_us_ = arrival + *cost_us;
  ++stats_.batches;
  ++stats_.batched_ops;
  Trace::Emit(TraceKind::kSchedDispatch, TraceOp::kNone, kInvalidPageId,
              DataClass::kBase, 1);
  return true;
}

void ScheduledMethod::Account(uint64_t cost_us, bool failed) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.completed;
  if (failed) ++stats_.failed;
  stats_.queue_delay_us.Record(0);
  stats_.service_us.Record(cost_us);
  stats_.total_us.Record(cost_us);
  if (opts_.slo_us == 0 || cost_us <= opts_.slo_us) {
    ++stats_.completed_within_slo;
  }
  stats_.end_us = now_us_;
}

Status ScheduledMethod::Insert(Key key, Value value) {
  uint64_t cost = 0;
  if (!Admit(false, &cost)) {
    return Status::ResourceExhausted("rate gate shed");
  }
  Status s = inner_->Insert(key, value);
  Account(cost, IsRequestFailure(RequestOp::kInsert, s));
  return s;
}

Status ScheduledMethod::Update(Key key, Value value) {
  uint64_t cost = 0;
  if (!Admit(false, &cost)) {
    return Status::ResourceExhausted("rate gate shed");
  }
  Status s = inner_->Update(key, value);
  Account(cost, IsRequestFailure(RequestOp::kUpdate, s));
  return s;
}

Status ScheduledMethod::Delete(Key key) {
  uint64_t cost = 0;
  if (!Admit(false, &cost)) {
    return Status::ResourceExhausted("rate gate shed");
  }
  Status s = inner_->Delete(key);
  Account(cost, IsRequestFailure(RequestOp::kDelete, s));
  return s;
}

Result<Value> ScheduledMethod::Get(Key key) {
  uint64_t cost = 0;
  if (!Admit(false, &cost)) {
    return Status::ResourceExhausted("rate gate shed");
  }
  Result<Value> r = inner_->Get(key);
  Account(cost, IsRequestFailure(RequestOp::kGet, r.status()));
  return r;
}

Status ScheduledMethod::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  uint64_t cost = 0;
  if (!Admit(true, &cost)) {
    return Status::ResourceExhausted("rate gate shed");
  }
  Status s = inner_->Scan(lo, hi, out);
  Account(cost, IsRequestFailure(RequestOp::kScan, s));
  return s;
}

}  // namespace rum

#include "service/admission.h"

#include <cmath>

namespace rum {

bool TokenBucket::TryAcquire(uint64_t now_us) {
  if (!enabled()) return true;
  if (now_us > last_us_) {
    double elapsed_s = static_cast<double>(now_us - last_us_) * 1e-6;
    tokens_ += rate_ * elapsed_s;
    if (tokens_ > burst_) tokens_ = burst_;
    last_us_ = now_us;
  }
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

bool CoDelController::OkToDrop(uint64_t sojourn_us, uint64_t now_us) {
  if (sojourn_us < target_us_) {
    first_above_us_ = 0;
    return false;
  }
  if (first_above_us_ == 0) {
    // First dequeue above target: arm the interval timer. Dropping only
    // starts if we are *still* above target an interval from now.
    first_above_us_ = now_us + interval_us_;
    return false;
  }
  return now_us >= first_above_us_;
}

uint64_t CoDelController::ControlLaw(uint64_t t) const {
  double denom = std::sqrt(static_cast<double>(drop_count_));
  if (denom < 1.0) denom = 1.0;
  return t + static_cast<uint64_t>(static_cast<double>(interval_us_) / denom);
}

bool CoDelController::ShouldShed(uint64_t sojourn_us, uint64_t now_us) {
  bool ok_to_drop = OkToDrop(sojourn_us, now_us);
  if (dropping_) {
    if (!ok_to_drop) {
      // Sojourn recovered (or dipped below target): leave dropping state.
      dropping_ = false;
      last_drop_count_ = drop_count_;
      return false;
    }
    if (now_us >= drop_next_us_) {
      ++drop_count_;
      drop_next_us_ = ControlLaw(drop_next_us_);
      return true;
    }
    return false;
  }
  if (!ok_to_drop) return false;
  // Enter dropping state and shed immediately. Resume near the previous
  // drop rate if overload returned quickly (the standard CoDel refinement:
  // a queue that re-congests within a couple of intervals has not really
  // recovered, so restart the control law where it left off).
  dropping_ = true;
  if (now_us < drop_next_us_ + 16 * interval_us_ && last_drop_count_ > 2) {
    drop_count_ = last_drop_count_ - 2;
  } else {
    drop_count_ = 1;
  }
  drop_next_us_ = ControlLaw(now_us);
  return true;
}

}  // namespace rum

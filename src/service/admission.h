#ifndef RUMLAB_SERVICE_ADMISSION_H_
#define RUMLAB_SERVICE_ADMISSION_H_

#include <cstdint>

namespace rum {

/// Front-door rate gate: a token bucket refilled continuously at
/// `rate_per_sec` with depth `burst`, evaluated on the virtual clock. A
/// request that finds no token is shed before it touches a queue. With
/// rate_per_sec == 0 the gate is open (enabled() false, TryAcquire always
/// true). Deterministic: refill is a pure function of elapsed virtual time.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  bool enabled() const { return rate_ > 0; }

  /// Refills for the virtual time elapsed since the last call, then takes
  /// one token if available. `now_us` must be nondecreasing.
  bool TryAcquire(uint64_t now_us);

 private:
  double rate_ = 0;
  double burst_ = 0;
  double tokens_ = 0;
  uint64_t last_us_ = 0;
};

/// The CoDel AQM (Nichols & Jacobson) on the scheduler's virtual clock, one
/// controller per shard. CoDel watches the *sojourn time* of each request it
/// dequeues: when sojourn stays above `target_us` for a full `interval_us`,
/// the shard enters a dropping state and sheds the head request on the
/// standard sqrt control-law schedule -- each successive drop comes sooner
/// (interval / sqrt(drop_count)) -- until a dequeue sees sojourn back under
/// target. Shedding from the *head* (oldest request) is what distinguishes
/// CoDel from tail drop: the clients whose requests have already waited
/// longest learn about overload first, and standing-queue delay converges to
/// the target instead of to the queue bound.
///
/// Deterministic: pure integer state driven by virtual time.
class CoDelController {
 public:
  CoDelController(uint64_t target_us, uint64_t interval_us)
      : target_us_(target_us), interval_us_(interval_us) {}

  /// Called for each request as it is popped for dispatch, with its queue
  /// sojourn and the current virtual time. Returns true when CoDel says to
  /// shed this request instead of serving it.
  bool ShouldShed(uint64_t sojourn_us, uint64_t now_us);

  bool dropping() const { return dropping_; }

 private:
  /// True when the sojourn signal has stayed above target for an interval.
  bool OkToDrop(uint64_t sojourn_us, uint64_t now_us);

  /// Next drop time under the sqrt control law.
  uint64_t ControlLaw(uint64_t t) const;

  uint64_t target_us_;
  uint64_t interval_us_;
  uint64_t first_above_us_ = 0;  ///< 0 = sojourn currently below target.
  bool dropping_ = false;
  uint64_t drop_next_us_ = 0;
  uint64_t drop_count_ = 0;       ///< Drops in the current dropping state.
  uint64_t last_drop_count_ = 0;  ///< drop_count_ when dropping last ended.
};

}  // namespace rum

#endif  // RUMLAB_SERVICE_ADMISSION_H_

#ifndef RUMLAB_SERVICE_SCHEDULED_METHOD_H_
#define RUMLAB_SERVICE_SCHEDULED_METHOD_H_

#include <memory>
#include <mutex>
#include <string_view>

#include "core/access_method.h"
#include "core/metrics.h"
#include "core/options.h"
#include "service/admission.h"
#include "service/request.h"

namespace rum {

/// The closed-loop face of the service layer: an AccessMethod decorator
/// MakeAccessMethod installs when Options::service.enabled, so every
/// existing closed-loop driver (WorkloadRunner, tests, benches) goes through
/// the front door without changing a call site.
///
/// Closed-loop callers issue the next operation only after the previous one
/// returns, so the queue is empty at every arrival: batching and CoDel are
/// structurally inert (group commit and head-drop need a standing queue,
/// which only open-loop arrivals build -- see RunOpenLoop). What remains
/// active is the front-door token bucket (a shed returns
/// kResourceExhausted before storage is touched; the workload runner
/// tallies it as ErrorTally::shed) and the full ledger/latency accounting
/// on the virtual clock. Each call is accounted as a batch of one:
/// dispatch_overhead_us + op_cost_us (scan_cost_us for scans).
///
/// Pass-through contract: with the rate gate off (the default), every call
/// forwards to the inner method unchanged, so RUM accounting and returned
/// contents are byte-identical to the undecorated method -- saturation_test
/// pins this against a service-disabled run.
///
/// Threading: bookkeeping is mutex-guarded; the inner call happens OUTSIDE
/// the lock, so partition-affine concurrent workers keep their parallelism
/// and the inner method's determinism contract is untouched. The service
/// ledger itself is exact under concurrency (mutex), but its latency
/// histograms interleave arbitrarily; the determinism contract for
/// scheduler statistics applies to single-threaded closed-loop runs and to
/// RunOpenLoop.
class ScheduledMethod : public AccessMethod, public KeyPartitioned {
 public:
  ScheduledMethod(std::unique_ptr<AccessMethod> inner,
                  const Options& options);

  /// Transparent: callers see the inner method's identity.
  std::string_view name() const override { return inner_->name(); }

  Status Insert(Key key, Value value) override;
  Status Update(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;

  /// Bulk creation and flush are setup traffic, not request traffic: they
  /// bypass the front door entirely.
  Status BulkLoad(std::span<const Entry> entries) override {
    return inner_->BulkLoad(entries);
  }
  Status Flush() override { return inner_->Flush(); }

  size_t size() const override { return inner_->size(); }
  CounterSnapshot stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  // KeyPartitioned: forwarded so concurrent runs keep partition affinity.
  size_t partitions() const override;
  size_t PartitionOf(Key key) const override;

  /// Snapshot of the service ledger (copy taken under the lock).
  ServiceStats service_stats() const;

  AccessMethod* inner() { return inner_.get(); }

 private:
  /// Front-door admission + clock advance for one request; returns false
  /// when the request is shed. On true, `*cost_us` is the service time
  /// charged.
  bool Admit(bool is_scan, uint64_t* cost_us);
  /// Post-call accounting for an admitted request.
  void Account(uint64_t cost_us, bool failed);

  std::unique_ptr<AccessMethod> inner_;
  Options::Service opts_;

  mutable std::mutex mu_;
  TokenBucket bucket_;
  uint64_t now_us_ = 0;
  ServiceStats stats_;

  MetricsGroup metrics_;  ///< Last member: unregisters before state dies.
};

}  // namespace rum

#endif  // RUMLAB_SERVICE_SCHEDULED_METHOD_H_

#ifndef RUMLAB_SERVICE_REQUEST_H_
#define RUMLAB_SERVICE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/status.h"
#include "core/types.h"

namespace rum {

/// The operation a request asks of the access method. Mirrors the
/// AccessMethod surface minus bulk creation (BulkLoad/Flush are setup
/// traffic, not request traffic, and bypass the scheduler).
enum class RequestOp : uint8_t {
  kGet = 0,
  kScan,
  kInsert,
  kUpdate,
  kDelete,
};

inline bool IsMutationOp(RequestOp op) {
  return op == RequestOp::kInsert || op == RequestOp::kUpdate ||
         op == RequestOp::kDelete;
}

/// The service layer's failure classification, mirroring the workload
/// runner's benign-status policy: point-query misses (kNotFound) and
/// bounded-domain refusals (kOutOfRange) are part of normal service.
inline bool IsRequestFailure(RequestOp op, const Status& s) {
  if (s.ok()) return false;
  switch (op) {
    case RequestOp::kGet:
      return s.code() != Code::kNotFound && s.code() != Code::kOutOfRange;
    case RequestOp::kScan:
      return true;
    default:
      return s.code() != Code::kOutOfRange;
  }
}

/// One request flowing through the scheduler. Times are *virtual*
/// microseconds on the scheduler's discrete-event clock, which is what makes
/// queueing dynamics a deterministic function of the seed (DESIGN.md §3h).
struct Request {
  RequestOp op = RequestOp::kGet;
  Key key = 0;
  Value value = 0;  ///< Payload for kInsert/kUpdate.
  Key scan_hi = 0;  ///< Inclusive upper bound for kScan.
  /// Sink for kScan results; may be null (results discarded). In-process
  /// only -- the pointer must outlive the request's completion.
  std::vector<Entry>* scan_out = nullptr;

  uint64_t arrival_us = 0;   ///< Virtual arrival time (nondecreasing).
  uint64_t deadline_us = 0;  ///< Absolute virtual deadline; 0 = none.
  uint8_t priority = 0;      ///< 0 = high, 1 = normal (FIFO within a class).
  uint64_t seq = 0;          ///< Submission order; assigned by the scheduler.
};

/// What finally happened to a submitted request. Exactly one of these per
/// request -- the ledger invariant below counts them.
enum class RequestOutcome : uint8_t {
  kCompleted = 0,      ///< Dispatched to the method (possibly failing there).
  kDeadlineExceeded,   ///< Expired in queue; the device was never touched.
  kShed,               ///< Refused by admission control or queue overflow.
};

/// Completion record handed to the submitter's callback.
struct RequestResult {
  RequestOutcome outcome = RequestOutcome::kShed;
  /// The method's status for kCompleted (benign misses mapped through
  /// as-is); kDeadlineExceeded / kResourceExhausted otherwise.
  Status status = Status::OK();
  Value value = 0;            ///< Get result when found.
  bool found = false;         ///< Get hit (status OK and value valid).
  /// True when a mutation was withheld under degraded service (kDegrade
  /// after the first failure): counted completed, storage untouched.
  bool degraded_skip = false;
  /// True when the method was invoked and returned a non-benign error (the
  /// scheduler's failure classification, mirroring the workload runner's).
  bool failed = false;
  uint64_t completion_us = 0; ///< Virtual completion time.
};

/// The scheduler's ledger and latency record. All durations are virtual
/// microseconds. The headline invariant -- checked exactly by
/// saturation_test -- is conservation of requests:
///
///   submitted == completed + deadline_missed + shed
///   accepted  == completed + deadline_missed + shed_codel
///   shed      == shed_queue_full + shed_rate_gate + shed_codel
///
/// `failed` is a subset of `completed` (the method was invoked and returned
/// a non-benign error); `completed_within_slo` is the goodput numerator.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t accepted = 0;  ///< Passed the front door into a queue.
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t degraded_skips = 0;  ///< Mutations withheld in degraded service.
  uint64_t deadline_missed = 0;
  uint64_t shed = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_rate_gate = 0;
  uint64_t shed_codel = 0;

  uint64_t batches = 0;       ///< Dispatch windows executed.
  uint64_t batched_ops = 0;   ///< Requests dispatched inside those windows.
  uint64_t coalesced_reads = 0;  ///< Gets served by piggybacking on a peer.
  uint64_t completed_within_slo = 0;
  uint64_t max_queue_depth = 0;  ///< High-water mark across shards.
  uint64_t end_us = 0;           ///< Virtual clock after the final drain.

  LatencyHistogram queue_delay_us;  ///< Arrival -> dispatch.
  LatencyHistogram service_us;      ///< Dispatch -> completion.
  LatencyHistogram total_us;        ///< Arrival -> completion (completed only).

  /// True when the conservation invariants above hold exactly.
  bool LedgerHolds() const {
    return submitted == completed + deadline_missed + shed &&
           accepted == completed + deadline_missed + shed_codel &&
           shed == shed_queue_full + shed_rate_gate + shed_codel;
  }

  /// Completions within the SLO per virtual second of run time.
  double goodput_ops_per_sec() const {
    return end_us == 0 ? 0.0
                       : static_cast<double>(completed_within_slo) * 1e6 /
                             static_cast<double>(end_us);
  }

  /// One JSON object with every counter plus the three histograms.
  /// Deterministic for a deterministic run (no wall-clock inputs), so
  /// same-seed replays compare byte-for-byte.
  std::string ToJson() const;
};

}  // namespace rum

#endif  // RUMLAB_SERVICE_REQUEST_H_

#include "service/scheduler.h"

#include <cstdint>
#include <limits>
#include <utility>

#include "core/trace.h"

namespace rum {

namespace {

/// Batch run classes: a dispatch window holds one kind of work, so group
/// commit batches mutation runs and read runs separately.
enum BatchClass : int { kClassMutation = 0, kClassGet = 1, kClassScan = 2 };

int ClassOf(RequestOp op) {
  if (IsMutationOp(op)) return kClassMutation;
  return op == RequestOp::kGet ? kClassGet : kClassScan;
}

}  // namespace

RequestScheduler::RequestScheduler(AccessMethod* method,
                                   const Options& options,
                                   ErrorMode error_mode)
    : method_(method),
      partitioned_(dynamic_cast<const KeyPartitioned*>(method)),
      opts_(options.service),
      error_mode_(error_mode),
      bucket_(opts_.rate_ops_per_sec, opts_.rate_burst_ops) {
  size_t shard_count =
      partitioned_ != nullptr ? partitioned_->partitions() : 1;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) shards_.emplace_back(opts_);

  metrics_.Init("scheduler");
  metrics_.Gauge("queue_depth",
                 [this] { return static_cast<uint64_t>(queue_depth()); });
  metrics_.Gauge("submitted", [this] { return stats_.submitted; });
  metrics_.Gauge("shed", [this] { return stats_.shed; });
  metrics_.Gauge("deadline_missed", [this] { return stats_.deadline_missed; });
  metrics_.Gauge("batches", [this] { return stats_.batches; });
  metrics_.Gauge("batched_ops", [this] { return stats_.batched_ops; });
  metrics_.Gauge("coalesced_reads", [this] { return stats_.coalesced_reads; });
  metrics_.Gauge("max_queue_depth", [this] { return stats_.max_queue_depth; });
  metrics_.Histogram("queue_delay_us",
                     [this] { return stats_.queue_delay_us; });
  metrics_.Histogram("total_us", [this] { return stats_.total_us; });
}

size_t RequestScheduler::ShardOf(const Request& req) const {
  if (partitioned_ == nullptr) return 0;
  // Scans queue on their lower bound's shard: the shard choice only decides
  // which virtual server's queue the request waits in; the method call
  // itself spans whatever partitions the range covers.
  return partitioned_->PartitionOf(req.key);
}

uint64_t RequestScheduler::NextStart(const Shard& s) const {
  uint64_t earliest = std::numeric_limits<uint64_t>::max();
  for (const auto& q : s.queue) {
    if (!q.empty() && q.front().arrival_us < earliest) {
      earliest = q.front().arrival_us;
    }
  }
  if (earliest == std::numeric_limits<uint64_t>::max()) return earliest;
  return earliest > s.busy_until_us ? earliest : s.busy_until_us;
}

size_t RequestScheduler::queue_depth() const {
  size_t depth = 0;
  for (const auto& s : shards_) depth += s.depth();
  return depth;
}

bool RequestScheduler::Submit(Request req) {
  // Serve everything that starts strictly before this arrival: at equal
  // times the arrival wins and may join the forming batch (group commit).
  ServeUntil(req.arrival_us);
  if (req.arrival_us > now_us_) now_us_ = req.arrival_us;
  req.seq = next_seq_++;
  ++stats_.submitted;
  if (opts_.deadline_us != 0 && req.deadline_us == 0) {
    req.deadline_us = req.arrival_us + opts_.deadline_us;
  }

  if (opts_.admission && !bucket_.TryAcquire(req.arrival_us)) {
    ++stats_.shed;
    ++stats_.shed_rate_gate;
    Trace::Emit(TraceKind::kSchedShed, TraceOp::kNone, kInvalidPageId,
                DataClass::kBase, 0);
    RequestResult r;
    r.outcome = RequestOutcome::kShed;
    r.status = Status::ResourceExhausted("rate gate shed");
    r.completion_us = req.arrival_us;
    Complete(req, r);
    return false;
  }

  Shard& s = shards_[ShardOf(req)];
  if (s.depth() >= opts_.queue_capacity) {
    ++stats_.shed;
    ++stats_.shed_queue_full;
    Trace::Emit(TraceKind::kSchedShed, TraceOp::kNone, kInvalidPageId,
                DataClass::kBase, s.depth());
    RequestResult r;
    r.outcome = RequestOutcome::kShed;
    r.status = Status::ResourceExhausted("queue full");
    r.completion_us = req.arrival_us;
    Complete(req, r);
    return false;
  }

  ++stats_.accepted;
  size_t cls = (opts_.priority_queues && req.priority > 0) ? 1 : 0;
  s.queue[cls].push_back(std::move(req));
  if (s.depth() > stats_.max_queue_depth) stats_.max_queue_depth = s.depth();
  return true;
}

void RequestScheduler::ServeUntil(uint64_t t_us) {
  while (true) {
    size_t best = shards_.size();
    uint64_t best_start = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < shards_.size(); ++i) {
      uint64_t start = NextStart(shards_[i]);
      if (start < best_start) {  // Ties break toward the lowest shard index.
        best_start = start;
        best = i;
      }
    }
    if (best == shards_.size() || best_start >= t_us) return;
    DispatchBatch(&shards_[best], best_start);
  }
}

void RequestScheduler::RunUntilIdle() {
  ServeUntil(std::numeric_limits<uint64_t>::max());
  stats_.end_us = now_us_;
}

void RequestScheduler::DispatchBatch(Shard* s, uint64_t start) {
  // Pick the source queue: high priority first, if its head has arrived by
  // the batch start; otherwise the normal queue. One batch drains one
  // priority class, so priority inversion is bounded by a single window.
  size_t p = 0;
  if (s->queue[0].empty() || s->queue[0].front().arrival_us > start) p = 1;

  std::vector<Request> batch;
  int batch_class = -1;
  while (batch.size() < opts_.batch_max_ops) {
    std::deque<Request>& q = s->queue[p];
    if (q.empty()) break;
    const Request& head = q.front();
    // Group commit only batches work already queued at dispatch time, and
    // only runs of the same class.
    if (head.arrival_us > start) break;
    if (batch_class >= 0 && ClassOf(head.op) != batch_class) break;

    Request req = std::move(q.front());
    q.pop_front();
    uint64_t sojourn = start - req.arrival_us;

    if (req.deadline_us != 0 && start > req.deadline_us) {
      // Expired in queue: complete without touching the device, costing the
      // server nothing -- the whole point of deadlines under overload.
      ++stats_.deadline_missed;
      stats_.queue_delay_us.Record(sojourn);
      Trace::Emit(TraceKind::kSchedDeadlineMiss, TraceOp::kNone,
                  kInvalidPageId, DataClass::kBase, sojourn);
      RequestResult r;
      r.outcome = RequestOutcome::kDeadlineExceeded;
      r.status = Status::DeadlineExceeded("expired in queue");
      r.completion_us = start;
      Complete(req, r);
      continue;
    }

    if (opts_.admission && s->codel.ShouldShed(sojourn, start)) {
      ++stats_.shed;
      ++stats_.shed_codel;
      Trace::Emit(TraceKind::kSchedShed, TraceOp::kNone, kInvalidPageId,
                  DataClass::kBase, sojourn);
      RequestResult r;
      r.outcome = RequestOutcome::kShed;
      r.status = Status::ResourceExhausted("codel head drop");
      r.completion_us = start;
      Complete(req, r);
      continue;
    }

    if (batch_class < 0) batch_class = ClassOf(req.op);
    batch.push_back(std::move(req));
  }
  if (batch.empty()) return;  // Everything at the head expired or shed.

  // Read coalescing: duplicate-key Gets in one window share one method
  // call; only unique keys pay service time.
  std::vector<int> dup_of(batch.size(), -1);
  size_t calls = batch.size();
  if (batch_class == kClassGet && opts_.coalesce_reads) {
    for (size_t i = 1; i < batch.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (batch[j].key == batch[i].key && dup_of[j] < 0) {
          dup_of[i] = static_cast<int>(j);
          --calls;
          break;
        }
      }
    }
  }

  uint64_t per_op =
      batch_class == kClassScan ? opts_.scan_cost_us : opts_.op_cost_us;
  uint64_t cost = opts_.dispatch_overhead_us + calls * per_op;
  uint64_t completion = start + cost;
  s->busy_until_us = completion;
  if (completion > now_us_) now_us_ = completion;
  ++stats_.batches;
  stats_.batched_ops += batch.size();
  Trace::Emit(TraceKind::kSchedDispatch, TraceOp::kNone, kInvalidPageId,
              DataClass::kBase, batch.size());

  std::vector<RequestResult> results(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    RequestResult& r = results[i];
    if (dup_of[i] >= 0) {
      r = results[static_cast<size_t>(dup_of[i])];
      ++stats_.coalesced_reads;
    } else {
      Execute(batch[i], &r);
    }
    r.outcome = RequestOutcome::kCompleted;
    r.completion_us = completion;
    ++stats_.completed;
    if (IsRequestFailure(batch[i].op, r.status) && !r.degraded_skip) {
      r.failed = true;
      ++stats_.failed;
      if (error_mode_ == ErrorMode::kDegrade) degraded_ = true;
    }
    uint64_t total = completion - batch[i].arrival_us;
    stats_.queue_delay_us.Record(start - batch[i].arrival_us);
    stats_.service_us.Record(cost);
    stats_.total_us.Record(total);
    if (opts_.slo_us == 0 || total <= opts_.slo_us) {
      ++stats_.completed_within_slo;
    }
    Complete(batch[i], r);
  }
}

void RequestScheduler::Execute(const Request& req, RequestResult* r) {
  if (error_mode_ == ErrorMode::kDegrade && degraded_ &&
      IsMutationOp(req.op)) {
    // Degraded service: the structure may be mid-reorganization after a
    // failure, so mutations are withheld before storage is touched.
    r->degraded_skip = true;
    ++stats_.degraded_skips;
    return;
  }
  switch (req.op) {
    case RequestOp::kInsert:
      r->status = method_->Insert(req.key, req.value);
      break;
    case RequestOp::kUpdate:
      r->status = method_->Update(req.key, req.value);
      break;
    case RequestOp::kDelete:
      r->status = method_->Delete(req.key);
      break;
    case RequestOp::kScan: {
      std::vector<Entry>* out = req.scan_out;
      if (out == nullptr) {
        scan_scratch_.clear();
        out = &scan_scratch_;
      }
      r->status = method_->Scan(req.key, req.scan_hi, out);
      break;
    }
    case RequestOp::kGet: {
      Result<Value> v = method_->Get(req.key);
      r->status = v.status();
      if (v.ok()) {
        r->found = true;
        r->value = v.value();
      }
      break;
    }
  }
}

void RequestScheduler::Complete(const Request& req,
                                const RequestResult& result) {
  if (completion_) completion_(req, result);
}

}  // namespace rum

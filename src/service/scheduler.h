#ifndef RUMLAB_SERVICE_SCHEDULER_H_
#define RUMLAB_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/access_method.h"
#include "core/metrics.h"
#include "core/options.h"
#include "service/admission.h"
#include "service/request.h"
#include "workload/spec.h"

namespace rum {

/// The request-scheduling front end between workload drivers and an access
/// method: per-shard bounded priority queues, group-commit batching, read
/// coalescing, per-request deadlines, and CoDel + token-bucket admission
/// control (DESIGN.md §3h).
///
/// Time is *virtual*: the scheduler is a discrete-event simulation whose
/// service costs come from Options::service's cost model (a dispatch window
/// costs dispatch_overhead_us + op_cost_us per op, scan_cost_us per scan, of
/// server time on its shard). Queueing dynamics -- depths, sojourns, sheds,
/// deadline misses, p99s -- are therefore a deterministic function of the
/// submitted request sequence, independent of wall-clock speed, sanitizers,
/// or host load. Shards serve in virtual parallel: each KeyPartitioned
/// partition is an independent server with its own queue and busy-until
/// horizon (non-partitioned methods are one shard).
///
/// Threading: single-threaded by contract, like the access methods it
/// fronts. Submit() arrivals must be nondecreasing in arrival_us. Export
/// metrics (registered under "scheduler[k].*") only between calls, per the
/// usual RumCounters synchronization contract.
///
/// Request lifecycle:
///   Submit -> front door (token bucket, queue bound) -> queue ->
///   dispatch (deadline check, CoDel head drop) -> batch -> method call ->
///   completion callback.
/// Every submitted request reaches the callback exactly once, with one of
/// the three RequestOutcomes; ServiceStats's ledger counts them.
class RequestScheduler {
 public:
  using CompletionFn =
      std::function<void(const Request&, const RequestResult&)>;

  /// `method` must outlive the scheduler. `error_mode` applies the workload
  /// error policy *inside* the dispatch loop: under kDegrade, the first
  /// non-benign method failure flips the scheduler into degraded service and
  /// every later mutation completes as a degraded skip without touching
  /// storage. `options.service` supplies every knob.
  RequestScheduler(AccessMethod* method, const Options& options,
                   ErrorMode error_mode = ErrorMode::kAbort);

  /// Invoked at each request's completion (any outcome), in virtual-time
  /// order. Set before the first Submit.
  void set_completion(CompletionFn fn) { completion_ = std::move(fn); }

  /// Serves all work due before `req.arrival_us`, then admits or sheds the
  /// request. Returns true when the request entered a queue (it will later
  /// complete, miss its deadline, or be CoDel-shed), false when the front
  /// door shed it. arrival_us values must be nondecreasing across calls.
  bool Submit(Request req);

  /// Dispatches every batch whose start time falls strictly before `t_us`.
  /// Batches started before `t_us` may complete after it (busy_until_us
  /// advances past the horizon); that is the open-loop overhang.
  void ServeUntil(uint64_t t_us);

  /// Drains every queue and records ServiceStats::end_us.
  void RunUntilIdle();

  /// Current virtual time: the later of the arrival frontier and the last
  /// completion processed.
  uint64_t now_us() const { return now_us_; }

  /// Queued (admitted, not yet dispatched) requests across all shards.
  size_t queue_depth() const;

  /// True once a non-benign failure flipped degraded service (kDegrade).
  bool degraded() const { return degraded_; }

  const ServiceStats& stats() const { return stats_; }

 private:
  struct Shard {
    std::deque<Request> queue[2];  ///< [0] = high priority, [1] = normal.
    uint64_t busy_until_us = 0;    ///< Server free time.
    CoDelController codel;

    explicit Shard(const Options::Service& s)
        : codel(s.codel_target_us, s.codel_interval_us) {}
    size_t depth() const { return queue[0].size() + queue[1].size(); }
  };

  size_t ShardOf(const Request& req) const;
  /// Earliest time shard `s` can start its next batch, or UINT64_MAX when
  /// its queues are empty.
  uint64_t NextStart(const Shard& s) const;
  /// Pops and runs one batch on shard `s` starting at virtual time `start`.
  void DispatchBatch(Shard* s, uint64_t start);
  /// Executes one dispatched request against the method (or withholds it
  /// under degraded service) and fills `result`.
  void Execute(const Request& req, RequestResult* result);
  void Complete(const Request& req, const RequestResult& result);

  AccessMethod* method_;
  const KeyPartitioned* partitioned_;  ///< Null when method is unsharded.
  Options::Service opts_;
  ErrorMode error_mode_;
  TokenBucket bucket_;
  std::vector<Shard> shards_;

  uint64_t now_us_ = 0;
  uint64_t next_seq_ = 0;
  bool degraded_ = false;
  ServiceStats stats_;
  CompletionFn completion_;
  std::vector<Entry> scan_scratch_;

  MetricsGroup metrics_;  ///< Last member: unregisters before state dies.
};

}  // namespace rum

#endif  // RUMLAB_SERVICE_SCHEDULER_H_

#ifndef RUMLAB_SERVICE_OPEN_LOOP_H_
#define RUMLAB_SERVICE_OPEN_LOOP_H_

#include <string>

#include "core/access_method.h"
#include "core/counters.h"
#include "core/options.h"
#include "core/status.h"
#include "service/request.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace rum {

/// Everything one open-loop phase produced: the scheduler's ledger and
/// latency record, the workload-level error tally (sheds, degraded skips,
/// absorbed failures), and the method's RUM accounting delta. Fully
/// deterministic for a fixed seed -- same-seed replays compare ToJson()
/// byte-for-byte (saturation_test pins this).
struct ServiceReport {
  ServiceStats stats;
  ErrorTally errors;
  CounterSnapshot rum;  ///< method->stats() delta across the phase.

  std::string ToJson() const;
};

/// Drives `spec` through a RequestScheduler open-loop: arrivals are stamped
/// by the spec's arrival process (Poisson or bursty, at
/// spec.offered_ops_per_sec) on the scheduler's virtual clock, *regardless
/// of completions* -- the only shape under which offered load can exceed
/// capacity, which is what admission control exists to survive.
///
/// The operation mix, key distribution, and error policy are the same ones
/// the closed-loop WorkloadRunner uses (op dice, KeyGenerator, benign-status
/// tolerance, kSkipAndCount/kDegrade tallies). Sheds land in
/// ErrorTally::shed; degraded-service mutation withholding happens inside
/// the scheduler, before storage is touched. Under kAbort the first
/// non-benign failure aborts the phase and returns that error.
///
/// Requires spec.arrival != kClosedLoop, spec.offered_ops_per_sec > 0, and
/// options.service.enabled (the scheduler is the layer under test; a
/// disabled service layer has no queues to drive open-loop).
Result<ServiceReport> RunOpenLoop(AccessMethod* method,
                                  const WorkloadSpec& spec,
                                  const Options& options);

}  // namespace rum

#endif  // RUMLAB_SERVICE_OPEN_LOOP_H_

#include "service/request.h"

#include <cstdio>

namespace rum {

std::string ServiceStats::ToJson() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"submitted\":%llu,\"accepted\":%llu,\"completed\":%llu,"
      "\"failed\":%llu,\"degraded_skips\":%llu,\"deadline_missed\":%llu,"
      "\"shed\":%llu,\"shed_queue_full\":%llu,\"shed_rate_gate\":%llu,"
      "\"shed_codel\":%llu,\"batches\":%llu,\"batched_ops\":%llu,"
      "\"coalesced_reads\":%llu,\"completed_within_slo\":%llu,"
      "\"max_queue_depth\":%llu,\"end_us\":%llu,"
      "\"goodput_ops_per_sec\":%.3f,\"ledger_holds\":%s",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(degraded_skips),
      static_cast<unsigned long long>(deadline_missed),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(shed_queue_full),
      static_cast<unsigned long long>(shed_rate_gate),
      static_cast<unsigned long long>(shed_codel),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(batched_ops),
      static_cast<unsigned long long>(coalesced_reads),
      static_cast<unsigned long long>(completed_within_slo),
      static_cast<unsigned long long>(max_queue_depth),
      static_cast<unsigned long long>(end_us), goodput_ops_per_sec(),
      LedgerHolds() ? "true" : "false");
  std::string out(buf);
  out += ",\"queue_delay_us\":" + queue_delay_us.ToJson();
  out += ",\"service_us\":" + service_us.ToJson();
  out += ",\"total_us\":" + total_us.ToJson();
  out += "}";
  return out;
}

}  // namespace rum

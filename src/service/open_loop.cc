#include "service/open_loop.h"

#include <cmath>
#include <cstdio>

#include "service/scheduler.h"
#include "workload/distribution.h"

namespace rum {

namespace {

/// Instantaneous arrival rate at virtual time `t_us` for the spec's arrival
/// process. Bursty modulation is on/off within each period: the on-window
/// runs at burst_factor times the base rate, the off-window slower so the
/// long-run average stays at offered_ops_per_sec (clamped at 1% of base
/// when the on-window alone exceeds the average).
double RateAt(const WorkloadSpec& spec, double t_us) {
  double base = spec.offered_ops_per_sec;
  if (spec.arrival != ArrivalProcess::kBursty) return base;
  double period = static_cast<double>(spec.burst_period_us);
  double phase = std::fmod(t_us, period) / period;
  double on = spec.burst_on_fraction;
  if (phase < on) return base * spec.burst_factor;
  double off = base * (1.0 - on * spec.burst_factor) / (1.0 - on);
  double floor = 0.01 * base;
  return off > floor ? off : floor;
}

}  // namespace

std::string ServiceReport::ToJson() const {
  std::string out = "{\"stats\":" + stats.ToJson();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      ",\"errors\":{\"io_errors\":%llu,\"corruption\":%llu,\"other\":%llu,"
      "\"degraded_skips\":%llu,\"shed\":%llu},"
      "\"rum\":{\"bytes_read\":%llu,\"bytes_written\":%llu,"
      "\"logical_bytes_read\":%llu,\"logical_bytes_written\":%llu,"
      "\"point_queries\":%llu,\"range_queries\":%llu,\"inserts\":%llu,"
      "\"updates\":%llu,\"deletes\":%llu,\"io_errors\":%llu,"
      "\"retries\":%llu}}",
      static_cast<unsigned long long>(errors.io_errors),
      static_cast<unsigned long long>(errors.corruption),
      static_cast<unsigned long long>(errors.other),
      static_cast<unsigned long long>(errors.degraded_skips),
      static_cast<unsigned long long>(errors.shed),
      static_cast<unsigned long long>(rum.total_bytes_read()),
      static_cast<unsigned long long>(rum.total_bytes_written()),
      static_cast<unsigned long long>(rum.logical_bytes_read),
      static_cast<unsigned long long>(rum.logical_bytes_written),
      static_cast<unsigned long long>(rum.point_queries),
      static_cast<unsigned long long>(rum.range_queries),
      static_cast<unsigned long long>(rum.inserts),
      static_cast<unsigned long long>(rum.updates),
      static_cast<unsigned long long>(rum.deletes),
      static_cast<unsigned long long>(rum.io_errors),
      static_cast<unsigned long long>(rum.retries));
  out += buf;
  return out;
}

Result<ServiceReport> RunOpenLoop(AccessMethod* method,
                                  const WorkloadSpec& spec,
                                  const Options& options) {
  if (spec.arrival == ArrivalProcess::kClosedLoop) {
    return Status::InvalidArgument(
        "RunOpenLoop requires an open-loop arrival process "
        "(use WorkloadRunner for closed loop)");
  }
  if (!(spec.offered_ops_per_sec > 0)) {
    return Status::InvalidArgument(
        "open-loop specs need offered_ops_per_sec > 0");
  }
  if (spec.arrival == ArrivalProcess::kBursty &&
      (spec.burst_on_fraction <= 0 || spec.burst_on_fraction >= 1 ||
       spec.burst_factor < 1 || spec.burst_period_us < 1)) {
    return Status::InvalidArgument(
        "bursty arrivals need burst_on_fraction in (0,1), burst_factor >= 1 "
        "and burst_period_us >= 1");
  }
  if (!options.service.enabled) {
    return Status::InvalidArgument(
        "RunOpenLoop needs options.service.enabled (the scheduler is the "
        "layer being driven)");
  }

  // Same seed-split scheme as the closed-loop runner, plus one stream for
  // arrival gaps, so op/key/value sequences match a closed-loop run of the
  // same spec.
  KeyGenerator keys(spec.distribution, spec.key_range, spec.seed + 1,
                    spec.zipf_theta);
  Rng op_rng(spec.seed + 2);
  Rng value_rng(spec.seed + 3);
  Rng arrival_rng(spec.seed + 4);

  Key scan_width = static_cast<Key>(static_cast<double>(spec.key_range) *
                                    spec.scan_selectivity);
  if (scan_width == 0) scan_width = 1;

  RequestScheduler scheduler(method, options, spec.error_mode);
  ErrorTally tally;
  Status abort_error = Status::OK();
  scheduler.set_completion([&](const Request&, const RequestResult& r) {
    switch (r.outcome) {
      case RequestOutcome::kShed:
        ++tally.shed;
        break;
      case RequestOutcome::kDeadlineExceeded:
        break;  // Service-level outcome; lives in the ledger, not the tally.
      case RequestOutcome::kCompleted:
        if (r.degraded_skip) {
          ++tally.degraded_skips;
        } else if (r.failed) {
          if (spec.error_mode == ErrorMode::kAbort) {
            if (abort_error.ok()) abort_error = r.status;
          } else {
            tally.Count(r.status);
          }
        }
        break;
    }
  });

  CounterSnapshot before = method->stats();
  double t_us = 0;
  for (uint64_t i = 0; i < spec.operations; ++i) {
    double u = arrival_rng.NextDouble();
    if (u >= 1.0) u = 0.9999999999;
    double rate = RateAt(spec, t_us);
    t_us += -std::log(1.0 - u) * 1e6 / rate;

    double dice = op_rng.NextDouble();
    Request req;
    req.arrival_us = static_cast<uint64_t>(t_us);
    req.key = keys.Next();
    if (dice < spec.insert_fraction) {
      req.op = RequestOp::kInsert;
      req.value = value_rng.Next();
    } else if (dice < spec.insert_fraction + spec.update_fraction) {
      req.op = RequestOp::kUpdate;
      req.value = value_rng.Next();
    } else if (dice < spec.insert_fraction + spec.update_fraction +
                          spec.delete_fraction) {
      req.op = RequestOp::kDelete;
    } else if (dice < spec.insert_fraction + spec.update_fraction +
                          spec.delete_fraction + spec.scan_fraction) {
      req.op = RequestOp::kScan;
      req.scan_hi = req.key > kMaxKey - scan_width ? kMaxKey
                                                   : req.key + scan_width;
    } else {
      req.op = RequestOp::kGet;
    }
    scheduler.Submit(std::move(req));
    if (!abort_error.ok()) return abort_error;
  }
  scheduler.RunUntilIdle();
  if (!abort_error.ok()) return abort_error;

  ServiceReport report;
  report.stats = scheduler.stats();
  report.errors = tally;
  report.rum = method->stats() - before;
  return report;
}

}  // namespace rum

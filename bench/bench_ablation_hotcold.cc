// Ablation A7 -- Section 5's "dynamic RUM balance": the hot/cold store's
// payoff as a function of workload skew.
//
// Under uniform access nothing is hot and the store degenerates to its
// cold LSM (plus sketch overhead). As Zipf skew grows, the CountMin
// sketch concentrates the hot table on the true heavy hitters and device
// reads collapse -- most of a hash index's read performance for a bounded
// memory overhead. The same sweep also runs the absorbed-bitmap wrapper to
// show the other Section-5 composition (updatable filters buying U).
#include <memory>

#include "bench/bench_util.h"
#include "methods/factory.h"
#include "methods/approx/update_absorber.h"
#include "methods/hotcold/hot_cold.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::FmtU;
using bench::Table;

void SkewSweep() {
  Banner("Hot/cold store vs plain LSM across workload skew");
  Table table({"zipf theta", "store", "blk/get", "MO", "hot keys",
               "promotions"});
  const size_t kN = 60000;
  const int kGets = 20000;
  for (double theta : {0.0, 0.6, 0.9, 0.99, 1.2}) {
    for (bool hot_cold : {false, true}) {
      Options options;
      options.block_size = 4096;
      options.hot_cold.hot_capacity = 2048;
      options.hot_cold.promote_estimate = 3;
      std::unique_ptr<AccessMethod> store =
          MakeAccessMethod(hot_cold ? "hot-cold" : "lsm-leveled", options);
      std::vector<Entry> entries = MakeSortedEntries(kN);
      (void)store->BulkLoad(entries);
      (void)store->Flush();
      store->ResetStats();
      KeyGenerator keys(theta == 0.0 ? KeyDistribution::kUniform
                                     : KeyDistribution::kZipfian,
                        kN, 7, theta == 0.0 ? 0.99 : theta);
      for (int i = 0; i < kGets; ++i) {
        (void)store->Get(keys.Next());
      }
      CounterSnapshot snap = store->stats();
      double blk = static_cast<double>(snap.blocks_read) / kGets;
      std::string hot_info = "-";
      std::string promo = "-";
      if (hot_cold) {
        auto* hc = static_cast<HotColdStore*>(store.get());
        hot_info = FmtU(hc->hot_count());
        promo = FmtU(hc->promotions());
      }
      char theta_label[16];
      std::snprintf(theta_label, sizeof(theta_label),
                    theta == 0.0 ? "uniform" : "%.2f", theta);
      table.AddRow({theta_label, hot_cold ? "hot-cold" : "lsm-leveled",
                    Fmt("%.3f", blk),
                    Fmt("%.3f", snap.space_amplification()), hot_info,
                    promo});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: at uniform access the two stores read the same\n"
      "number of blocks (the hot table admits nothing useful); as skew\n"
      "grows, the hot/cold store's device reads collapse toward zero while\n"
      "its memory overhead stays bounded by the hot capacity.\n");
}

void AbsorberSweep() {
  Banner("Update absorber over a direct-mode bitmap: delta capacity sweep");
  Table table({"delta cap", "ins aux B/op", "pending", "get blk/q"});
  const Key kDomain = 1u << 18;
  const int kInserts = 8000;
  const int kGets = 500;
  for (size_t delta : {1u, 256u, 1024u, 4096u}) {
    Options options;
    options.block_size = 4096;
    options.bitmap.cardinality = 128;
    options.bitmap.key_domain = kDomain;
    options.absorber.delta_entries = delta;
    std::unique_ptr<AccessMethod> store =
        MakeAccessMethod("absorbed-bitmap", options);
    Rng rng(15);
    for (int i = 0; i < kInserts; ++i) {
      (void)store->Insert(rng.Next() % kDomain, i);
    }
    double ins_bytes =
        static_cast<double>(store->stats().bytes_written_aux) / kInserts;
    auto* absorber = static_cast<UpdateAbsorber*>(store.get());
    size_t pending = absorber->pending_updates();
    // Drain before the read phase so every configuration reads the same
    // fully-indexed bitmap (otherwise read cost would just reflect how
    // much data had reached the base yet).
    (void)store->Flush();
    store->ResetStats();
    for (int i = 0; i < kGets; ++i) {
      (void)store->Get(rng.Next() % kDomain);
    }
    double get_blk =
        static_cast<double>(store->stats().blocks_read) / kGets;
    table.AddRow({FmtU(delta), Fmt("%.1f", ins_bytes), FmtU(pending),
                  Fmt("%.2f", get_blk)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: a delta of 1 degenerates to direct updates (every\n"
      "insert drains immediately); growing the delta cuts the per-insert\n"
      "bitmap maintenance, and because drains apply in key order, larger\n"
      "batches also *cluster* the heap -- each bin's rows land on few\n"
      "blocks, so post-drain reads get cheaper too. Buffering buys U and,\n"
      "through clustering, some R; the price is the delta's memory and the\n"
      "filter probes on every read.\n");
}

}  // namespace
}  // namespace rum

int main() {
  rum::bench::Banner(
      "A7: dynamic RUM balance -- hot/cold steering and update absorption");
  rum::SkewSweep();
  rum::AbsorberSweep();
  return 0;
}

// Ablation A2 -- Section 5's "dynamic RUM balance ... by changing the
// number of merge trees dynamically, the depth of the merge hierarchy and
// the frequency of merging".
//
// All four compaction policies (leveled, tiered, lazy-leveled, hybrid)
// across size ratios: write amplification and read amplification cross
// over -- the same structure sliding along the R/U tradeoff curve, with
// lazy leveling and the hybrid occupying the middle. The stepped-merge
// tree (no filters) is included as the PBT/MaSM-style baseline.
#include <memory>

#include "bench/bench_util.h"
#include "methods/diff/stepped_merge.h"
#include "methods/lsm/lsm_tree.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::FmtU;
using bench::Table;

constexpr size_t kInserts = 60000;
constexpr Key kRange = 1u << 18;
constexpr int kQueries = 3000;

template <typename Method>
void Measure(Method* method, double* uo, double* read_blocks,
             size_t* runs) {
  Rng rng(6);
  for (size_t i = 0; i < kInserts; ++i) {
    (void)method->Insert(rng.NextBelow(kRange), i);
  }
  *uo = method->stats().write_amplification();
  *runs = method->total_runs();
  method->ResetStats();
  for (int i = 0; i < kQueries; ++i) {
    (void)method->Get(rng.NextBelow(kRange));
  }
  *read_blocks =
      static_cast<double>(method->stats().blocks_read) / kQueries;
}

void Sweep() {
  Banner("Merge policy x size ratio: write amp vs read cost");
  Table table({"policy", "T", "UO (write amp)", "read blk/q", "runs"});
  for (size_t ratio : {2u, 3u, 4u, 6u, 8u, 10u}) {
    for (LsmPolicy policy :
         {LsmPolicy::kLeveled, LsmPolicy::kTiered,
          LsmPolicy::kLazyLeveled, LsmPolicy::kHybrid}) {
      Options options;
      options.block_size = 4096;
      options.lsm.memtable_entries = 2048;
      options.lsm.size_ratio = ratio;
      options.lsm.policy = policy;
      options.lsm.bloom_bits_per_key = 0;  // Isolate the merge effect.
      LsmTree tree(options);
      double uo, read_blocks;
      size_t runs;
      Measure(&tree, &uo, &read_blocks, &runs);
      const char* label = policy == LsmPolicy::kLeveled  ? "leveled"
                          : policy == LsmPolicy::kTiered ? "tiered"
                          : policy == LsmPolicy::kLazyLeveled
                              ? "lazy-leveled"
                              : "hybrid";
      table.AddRow({label, FmtU(ratio), Fmt("%.2f", uo),
                    Fmt("%.2f", read_blocks), FmtU(runs)});
    }
    // Stepped-merge with runs_per_level = T as the differential baseline.
    Options options;
    options.block_size = 4096;
    options.stepped.buffer_entries = 2048;
    options.stepped.runs_per_level = ratio;
    SteppedMergeTree stepped(options);
    double uo, read_blocks;
    size_t runs;
    Measure(&stepped, &uo, &read_blocks, &runs);
    table.AddRow({"stepped-merge", FmtU(ratio), Fmt("%.2f", uo),
                  Fmt("%.2f", read_blocks), FmtU(runs)});
  }
  table.Print();
}

void CompressionTrade() {
  // The paper's §5 coda: "compression is seldom used only for transferring
  // data ... modern data systems operate mostly on compressed data". Delta
  // compression shrinks every run: lower MO, fewer blocks per read AND per
  // merge -- paid in encode/decode computation, outside the RUM triangle.
  Banner("Run compression: size, read cost, and write cost together");
  Table table({"runs", "space KB", "MO", "read blk/q", "UO (write amp)"});
  for (bool compress : {false, true}) {
    Options options;
    options.block_size = 4096;
    options.lsm.memtable_entries = 2048;
    options.lsm.bloom_bits_per_key = 0;
    options.lsm.compress_runs = compress;
    LsmTree tree(options);
    double uo, read_blocks;
    size_t runs;
    Measure(&tree, &uo, &read_blocks, &runs);
    table.AddRow({compress ? "compressed" : "raw",
                  Fmt("%.0f", tree.stats().total_space() / 1024.0),
                  Fmt("%.3f", tree.stats().space_amplification()),
                  Fmt("%.2f", read_blocks), Fmt("%.2f", uo)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: compression improves M (runs ~40%% smaller on\n"
      "dense keys) and U (merges move fewer bytes) at once, and would\n"
      "improve range reads too (fewer blocks per scanned range; point\n"
      "reads still touch one page per run). Its price -- encode/decode\n"
      "CPU -- lies outside the three overheads, which is why the paper\n"
      "calls compression orthogonal to the RUM Conjecture.\n");
}

}  // namespace
}  // namespace rum

int main() {
  rum::bench::Banner(
      "A2: merge depth and frequency -- leveled vs tiered vs stepped-merge");
  rum::Sweep();
  rum::CompressionTrade();
  std::printf(
      "\nExpected shape: leveled write amp grows with T while its read\n"
      "cost stays ~1 block; tiered/stepped write amp stays low (~1-2) while\n"
      "read cost grows with the run count. The two families cross over --\n"
      "no point dominates, as the RUM Conjecture demands.\n");
  return 0;
}

// Experiment E2 -- the paper's Table 1 (Section 4), measured.
//
// For the six organizations of Table 1 (B+-Tree, hash index, ZoneMaps,
// levelled LSM, sorted column, unsorted column), measure with exact block
// accounting: bulk creation cost, index size, point-query cost, range-query
// cost, and amortized insert cost. The asymptotic column reproduces the
// paper's entry; absolute numbers are ours (4 KiB blocks, 16-byte entries,
// B = 255 entries/block).
#include <memory>

#include "bench/bench_util.h"
#include "core/access_method.h"
#include "methods/factory.h"
#include "storage/page_format.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::FmtU;
using bench::Table;

struct MethodPlan {
  const char* name;
  const char* bulk_theory;
  const char* size_theory;
  const char* point_theory;
  const char* range_theory;
  const char* insert_theory;
};

constexpr MethodPlan kPlans[] = {
    {"btree", "O(N/B log(N/B))", "O(N/B)", "O(log_B N)", "O(log_B N + m)",
     "O(log_B N)"},
    {"hash", "O(N)", "O(N/B)", "O(1)", "O(N/B)", "O(1)"},
    {"zonemap", "O(N/B)", "O(N/P/B)", "O(N/P/B)", "O(N/P/B + P/B)",
     "O(N/P/B + P/B)"},
    {"lsm-leveled", "N/A", "O(N T/(T-1))", "O(log_T(N/B))",
     "O(log_T(N/B) + m)", "O(T/B log_T(N/B))"},
    {"sorted-column", "O(N/B log(N/B))", "O(1)", "O(log2 N)",
     "O(log2 N + m)", "O(N/B/2)"},
    {"unsorted-column", "O(1)", "O(1)", "O(N/B/2)", "O(N/B)", "O(1)"},
};

Options Table1Options() {
  Options options;
  options.block_size = 4096;
  options.lsm.memtable_entries = 4096;
  options.lsm.size_ratio = 4;
  options.lsm.bloom_bits_per_key = 10;
  options.zonemap.zone_entries = 4096;
  return options;
}

void RunForSize(size_t n) {
  char title[128];
  std::snprintf(title, sizeof(title),
                "Table 1 measured: N = %zu, block = 4096 B (B = 255 "
                "entries), range m = 1000",
                n);
  Banner(title);
  Table table({"method", "bulk blkW", "bulk(th)", "aux KB", "size(th)",
               "point blk/q", "point(th)", "range blk/q", "range(th)",
               "ins blk/op", "ins(th)"});

  for (const MethodPlan& plan : kPlans) {
    Options options = Table1Options();
    std::unique_ptr<AccessMethod> method =
        MakeAccessMethod(plan.name, options);

    // --- Bulk creation.
    std::vector<Entry> entries = MakeSortedEntries(n, 0, 2);
    (void)method->BulkLoad(entries);
    (void)method->Flush();
    CounterSnapshot bulk = method->stats();
    uint64_t bulk_blocks = bulk.blocks_written;
    double aux_kb = static_cast<double>(bulk.space_aux) / 1024.0;

    // --- Point queries (uniform hits).
    method->ResetStats();
    Rng rng(11);
    const int kPoint = 400;
    for (int i = 0; i < kPoint; ++i) {
      (void)method->Get(rng.NextBelow(n) * 2);
    }
    double point_blocks =
        static_cast<double>(method->stats().blocks_read) / kPoint;

    // --- Range queries of m = 1000 result rows.
    method->ResetStats();
    const int kRange = 50;
    const Key kWidth = 2000;  // Stride 2 => ~1000 results.
    std::vector<Entry> out;
    for (int i = 0; i < kRange; ++i) {
      out.clear();
      Key lo = rng.NextBelow(n * 2 - kWidth);
      (void)method->Scan(lo, lo + kWidth, &out);
    }
    double range_blocks =
        static_cast<double>(method->stats().blocks_read) / kRange;

    // --- Inserts into the gaps (odd keys), amortized. The sorted column
    // pays O(N/B) per insert, so it gets fewer to keep the bench fast; the
    // others get enough to amortize compaction and rehash bursts.
    method->ResetStats();
    const int kInserts =
        std::string_view(plan.name) == "sorted-column" ? 200 : 2000;
    for (int i = 0; i < kInserts; ++i) {
      (void)method->Insert(rng.NextBelow(n) * 2 + 1, i);
    }
    (void)method->Flush();
    double insert_blocks =
        static_cast<double>(method->stats().blocks_written) / kInserts;

    table.AddRow({plan.name, FmtU(bulk_blocks), plan.bulk_theory,
                  Fmt("%.1f", aux_kb), plan.size_theory,
                  Fmt("%.2f", point_blocks), plan.point_theory,
                  Fmt("%.2f", range_blocks), plan.range_theory,
                  Fmt("%.3f", insert_blocks), plan.insert_theory});
  }
  table.Print();
}

}  // namespace
}  // namespace rum

int main() {
  rum::bench::Banner(
      "E2: Table 1 of the paper -- six access methods, measured I/O cost");
  for (size_t n : {1u << 14, 1u << 16, 1u << 18}) {
    rum::RunForSize(n);
  }
  std::printf(
      "\nExpected shape (paper): zonemap has the smallest index; hash the\n"
      "fastest point queries; btree the fastest range queries; hash/LSM/\n"
      "unsorted-column the cheapest inserts; sorted-column pays O(N/B)\n"
      "per insert; unsorted-column pays O(N/B) per read.\n");
  return 0;
}

// Wall-clock microbenchmarks (google-benchmark) for every access method:
// point gets and inserts on a pre-loaded structure. The amplification
// benches are the reproduction targets; these numbers show the simulator's
// own throughput and the relative CPU cost of the structures.
//
// Set RUMLAB_BENCH_METRICS=1 to enable the metrics registry for the run and
// mirror its JSON export to BENCH_wallclock_metrics.json. It is off by
// default so the committed BENCH_wallclock.json baseline (and ci.sh's
// regression guard against it) measures the observability-disabled path.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/metrics.h"
#include "methods/factory.h"
#include "workload/distribution.h"

namespace rum {
namespace {

constexpr size_t kLoad = 20000;
constexpr Key kRange = 1u << 16;

Options BenchOptions() {
  Options options;
  options.block_size = 4096;
  options.bitmap.key_domain = kRange;
  options.extremes.magic_array_domain = kRange;
  return options;
}

std::unique_ptr<AccessMethod> LoadedMethod(const std::string& name,
                                           size_t load) {
  std::unique_ptr<AccessMethod> method =
      MakeAccessMethod(name, BenchOptions());
  std::vector<Entry> entries = MakeSortedEntries(load, 0, 2);
  (void)method->BulkLoad(entries);
  (void)method->Flush();
  return method;
}

// Attaches the RUM amplifications of the timed window to the benchmark's
// JSON record, so BENCH_wallclock.json carries (method, ops/sec, RO/UO/MO)
// in one machine-readable place.
void AttachRumCounters(benchmark::State& state, const CounterSnapshot& before,
                       const CounterSnapshot& after) {
  CounterSnapshot delta = after - before;
  state.counters["RO"] = delta.read_amplification();
  state.counters["UO"] = delta.write_amplification();
  state.counters["MO"] = after.space_amplification();
}

// When the registry is enabled (RUMLAB_BENCH_METRICS=1), accumulate timed
// iterations per benchmark family so the metrics sidecar carries run totals.
void CountIterations(const char* counter, const benchmark::State& state) {
  if (!MetricsRegistry::Global().enabled()) return;
  MetricsRegistry::Global().FindOrCreateCounter(counter)->Increment(
      static_cast<uint64_t>(state.iterations()));
}

void BM_Get(benchmark::State& state, const std::string& name, size_t load) {
  std::unique_ptr<AccessMethod> method = LoadedMethod(name, load);
  Rng rng(1);
  CounterSnapshot before = method->stats();
  for (auto _ : state) {
    Key k = rng.NextBelow(load) * 2;
    benchmark::DoNotOptimize(method->Get(k));
  }
  state.SetItemsProcessed(state.iterations());
  AttachRumCounters(state, before, method->stats());
  CountIterations("bench_wallclock.get_iterations", state);
}

void BM_Insert(benchmark::State& state, const std::string& name,
               size_t load) {
  std::unique_ptr<AccessMethod> method = LoadedMethod(name, load);
  Rng rng(2);
  CounterSnapshot before = method->stats();
  for (auto _ : state) {
    Key k = rng.NextBelow(load) * 2 + 1;
    benchmark::DoNotOptimize(method->Insert(k, 1));
  }
  state.SetItemsProcessed(state.iterations());
  AttachRumCounters(state, before, method->stats());
  CountIterations("bench_wallclock.insert_iterations", state);
}

// `width` is the requested record count; loaded keys sit at stride 2, so
// the key window is width * 2.
void BM_Scan(benchmark::State& state, const std::string& name, size_t load,
             size_t width) {
  std::unique_ptr<AccessMethod> method = LoadedMethod(name, load);
  Rng rng(3);
  std::vector<Entry> out;
  CounterSnapshot before = method->stats();
  for (auto _ : state) {
    Key lo = rng.NextBelow(load) * 2;
    out.clear();
    benchmark::DoNotOptimize(method->Scan(lo, lo + width * 2, &out));
  }
  state.SetItemsProcessed(state.iterations());
  AttachRumCounters(state, before, method->stats());
  CountIterations("bench_wallclock.scan_iterations", state);
}

// Scan-heavy LSM shape: insert-loaded in shuffled order (BulkLoad would
// collapse to one run), so every resident run spans the key domain and a
// range scan pays every run -- the workload the cross-run index targets.
// The sorted-column row is the acceptance yardstick: the one-seek scan
// must hold within a small factor of the ideal sorted layout.
std::unique_ptr<AccessMethod> ScanHotMethod(const std::string& name,
                                            bool cross_run_index) {
  Options options = BenchOptions();
  options.lsm.memtable_entries = 512;
  options.lsm.cross_run_index = cross_run_index;
  // Scan-tuned granularity: at 4 KiB blocks fence groups are ~2 pages, so
  // the default 1024-entry segments leave as much in-segment advance as
  // the fence slack they replace. Finer segments buy the RO win with a
  // little extra auxiliary space (the trade the cost model prices).
  options.lsm.cross_run_segment_entries = 128;
  std::unique_ptr<AccessMethod> method = MakeAccessMethod(name, options);
  std::vector<Key> keys(kLoad);
  for (size_t i = 0; i < kLoad; ++i) keys[i] = static_cast<Key>(i) * 2;
  Rng rng(7);
  for (size_t i = kLoad; i-- > 1;) {
    std::swap(keys[i], keys[rng.NextBelow(i + 1)]);
  }
  for (Key k : keys) (void)method->Insert(k, k);
  (void)method->Flush();
  return method;
}

void BM_ScanHot(benchmark::State& state, const std::string& name,
                bool cross_run_index, size_t width) {
  std::unique_ptr<AccessMethod> method = ScanHotMethod(name, cross_run_index);
  Rng rng(3);
  std::vector<Entry> out;
  CounterSnapshot before = method->stats();
  for (auto _ : state) {
    Key lo = rng.NextBelow(kLoad) * 2;
    out.clear();
    benchmark::DoNotOptimize(method->Scan(lo, lo + width * 2, &out));
  }
  state.SetItemsProcessed(state.iterations());
  AttachRumCounters(state, before, method->stats());
  CountIterations("bench_wallclock.scan_iterations", state);
}

struct Registration {
  Registration() {
    // The linear-scan structures get a reduced load so a single iteration
    // stays in the microsecond range.
    const std::pair<const char*, size_t> configs[] = {
        {"btree", kLoad},          {"hash", kLoad},
        {"zonemap", kLoad},        {"lsm-leveled", kLoad},
        {"lsm-tiered", kLoad},     {"lsm-lazy", kLoad},
        {"lsm-hybrid", kLoad},     {"sorted-column", kLoad},
        {"skiplist", kLoad},       {"trie", kLoad},
        {"bitmap-delta", kLoad},   {"cracking", kLoad},
        {"stepped-merge", kLoad},  {"bloom-zones", kLoad},
        {"magic-array", kLoad},    {"unsorted-column", 2000},
        {"pure-log", 2000},        {"dense-array", 2000},
    };
    for (const auto& [name, load] : configs) {
      std::string n = name;
      benchmark::RegisterBenchmark(("Get/" + n).c_str(),
                                   [n, load = load](benchmark::State& s) {
                                     BM_Get(s, n, load);
                                   });
      benchmark::RegisterBenchmark(("Insert/" + n).c_str(),
                                   [n, load = load](benchmark::State& s) {
                                     BM_Insert(s, n, load);
                                   });
      const std::pair<const char*, size_t> widths[] = {
          {"Scan16/", 16}, {"Scan128/", 128}, {"Scan4K/", 4096}};
      for (const auto& [prefix, width] : widths) {
        benchmark::RegisterBenchmark(
            (prefix + n).c_str(),
            [n, load = load, width = width](benchmark::State& s) {
              BM_Scan(s, n, load, width);
            });
      }
    }
    // Scan-heavy multi-run rows: the cross-run index's target workload,
    // with its off-switch twin and the sorted ideal for scale.
    const std::tuple<const char*, const char*, bool> hot_configs[] = {
        {"ScanHot128/lsm-tiered", "lsm-tiered", true},
        {"ScanHot128/lsm-tiered-noindex", "lsm-tiered", false},
        {"ScanHot128/lsm-leveled", "lsm-leveled", true},
        {"ScanHot128/sorted-column", "sorted-column", true},
    };
    for (const auto& [label, method, index] : hot_configs) {
      std::string l = label, m = method;
      benchmark::RegisterBenchmark(
          l.c_str(), [m, index = index](benchmark::State& s) {
            BM_ScanHot(s, m, index, 128);
          });
    }
  }
};
Registration registration;

}  // namespace
}  // namespace rum

// Custom main: unless the caller passes their own --benchmark_out, results
// are mirrored to BENCH_wallclock.json (google-benchmark's JSON schema,
// with the RO/UO/MO counters attached per benchmark) for machine
// consumption alongside the console table.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_wallclock.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  const bool metrics = std::getenv("RUMLAB_BENCH_METRICS") != nullptr;
  if (metrics) rum::MetricsRegistry::Global().set_enabled(true);
  benchmark::RunSpecifiedBenchmarks();
  if (metrics) {
    const char* path = "BENCH_wallclock_metrics.json";
    std::FILE* f = std::fopen(path, "w");
    if (f != nullptr) {
      std::string json = rum::MetricsRegistry::Global().ToJson();
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
      std::printf("wrote metrics registry export to %s\n", path);
    }
  }
  benchmark::Shutdown();
  return 0;
}

// Wall-clock microbenchmarks (google-benchmark) for every access method:
// point gets and inserts on a pre-loaded structure. The amplification
// benches are the reproduction targets; these numbers show the simulator's
// own throughput and the relative CPU cost of the structures.
#include <memory>

#include <benchmark/benchmark.h>

#include "methods/factory.h"
#include "workload/distribution.h"

namespace rum {
namespace {

constexpr size_t kLoad = 20000;
constexpr Key kRange = 1u << 16;

Options BenchOptions() {
  Options options;
  options.block_size = 4096;
  options.bitmap.key_domain = kRange;
  options.extremes.magic_array_domain = kRange;
  return options;
}

std::unique_ptr<AccessMethod> LoadedMethod(const std::string& name,
                                           size_t load) {
  std::unique_ptr<AccessMethod> method =
      MakeAccessMethod(name, BenchOptions());
  std::vector<Entry> entries = MakeSortedEntries(load, 0, 2);
  (void)method->BulkLoad(entries);
  (void)method->Flush();
  return method;
}

void BM_Get(benchmark::State& state, const std::string& name, size_t load) {
  std::unique_ptr<AccessMethod> method = LoadedMethod(name, load);
  Rng rng(1);
  for (auto _ : state) {
    Key k = rng.NextBelow(load) * 2;
    benchmark::DoNotOptimize(method->Get(k));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Insert(benchmark::State& state, const std::string& name,
               size_t load) {
  std::unique_ptr<AccessMethod> method = LoadedMethod(name, load);
  Rng rng(2);
  for (auto _ : state) {
    Key k = rng.NextBelow(load) * 2 + 1;
    benchmark::DoNotOptimize(method->Insert(k, 1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Scan(benchmark::State& state, const std::string& name, size_t load) {
  std::unique_ptr<AccessMethod> method = LoadedMethod(name, load);
  Rng rng(3);
  std::vector<Entry> out;
  for (auto _ : state) {
    Key lo = rng.NextBelow(load);
    out.clear();
    benchmark::DoNotOptimize(method->Scan(lo, lo + 128, &out));
  }
  state.SetItemsProcessed(state.iterations());
}

struct Registration {
  Registration() {
    // The linear-scan structures get a reduced load so a single iteration
    // stays in the microsecond range.
    const std::pair<const char*, size_t> configs[] = {
        {"btree", kLoad},          {"hash", kLoad},
        {"zonemap", kLoad},        {"lsm-leveled", kLoad},
        {"lsm-tiered", kLoad},     {"sorted-column", kLoad},
        {"skiplist", kLoad},       {"trie", kLoad},
        {"bitmap-delta", kLoad},   {"cracking", kLoad},
        {"stepped-merge", kLoad},  {"bloom-zones", kLoad},
        {"magic-array", kLoad},    {"unsorted-column", 2000},
        {"pure-log", 2000},        {"dense-array", 2000},
    };
    for (const auto& [name, load] : configs) {
      std::string n = name;
      benchmark::RegisterBenchmark(("Get/" + n).c_str(),
                                   [n, load = load](benchmark::State& s) {
                                     BM_Get(s, n, load);
                                   });
      benchmark::RegisterBenchmark(("Insert/" + n).c_str(),
                                   [n, load = load](benchmark::State& s) {
                                     BM_Insert(s, n, load);
                                   });
      benchmark::RegisterBenchmark(("Scan128/" + n).c_str(),
                                   [n, load = load](benchmark::State& s) {
                                     BM_Scan(s, n, load);
                                   });
    }
  }
};
Registration registration;

}  // namespace
}  // namespace rum

BENCHMARK_MAIN();

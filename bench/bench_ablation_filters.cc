// Ablation A6 -- the probabilistic building blocks of Section 5 compared:
// classic Bloom filter, cache-line blocked Bloom filter, and the updatable
// quotient filter.
//
// The paper's Section 4 argues tunable access methods must be cache-aware,
// and Section 5 wants *updatable* probabilistic structures. This bench
// quantifies what each property costs: false-positive rate, space, bytes
// touched per probe, and whether deletes are supported.
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "methods/sketch/blocked_bloom.h"
#include "methods/sketch/bloom_filter.h"
#include "methods/sketch/quotient_filter.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::FmtU;
using bench::Table;

constexpr size_t kKeys = 1u << 15;
constexpr size_t kProbes = 60000;

double MeasureFp(const std::function<bool(Key)>& may_contain) {
  size_t fp = 0;
  for (Key k = 0; k < kProbes; ++k) {
    if (may_contain(10 * kKeys + k)) ++fp;
  }
  return static_cast<double>(fp) / kProbes;
}

void Compare() {
  Banner("Filter families at matched space budgets");
  Table table({"filter", "bits/key", "space KB", "fp rate", "B/probe",
               "deletes"});
  for (size_t bits : {6u, 8u, 10u, 12u}) {
    {
      RumCounters counters;
      BloomFilter bloom(kKeys, bits, &counters);
      for (Key k = 0; k < kKeys; ++k) bloom.Add(k);
      CounterSnapshot before = counters.snapshot();
      double fp = MeasureFp([&](Key k) { return bloom.MayContain(k); });
      double per_probe =
          static_cast<double>(counters.snapshot().bytes_read_aux -
                              before.bytes_read_aux) /
          kProbes;
      table.AddRow({"bloom", FmtU(bits),
                    Fmt("%.1f", bloom.space_bytes() / 1024.0),
                    Fmt("%.5f", fp), Fmt("%.2f", per_probe), "no"});
    }
    {
      RumCounters counters;
      BlockedBloomFilter blocked(kKeys, bits, &counters);
      for (Key k = 0; k < kKeys; ++k) blocked.Add(k);
      CounterSnapshot before = counters.snapshot();
      double fp = MeasureFp([&](Key k) { return blocked.MayContain(k); });
      double per_probe =
          static_cast<double>(counters.snapshot().bytes_read_aux -
                              before.bytes_read_aux) /
          kProbes;
      table.AddRow({"blocked-bloom", FmtU(bits),
                    Fmt("%.1f", blocked.space_bytes() / 1024.0),
                    Fmt("%.5f", fp), Fmt("%.2f", per_probe),
                    "no (1 line/op)"});
    }
    {
      // Match the space budget: slots x (r+3) bits ~ kKeys x bits at ~50%
      // load -> quotient bits = log2(2 * kKeys), remainder = 2*bits - 3.
      RumCounters counters;
      size_t remainder = bits * 2 > 3 ? bits * 2 - 3 : 1;
      QuotientFilter qf(16, remainder, &counters);  // 65536 slots.
      for (Key k = 0; k < kKeys; ++k) {
        (void)qf.Insert(k);
      }
      CounterSnapshot before = counters.snapshot();
      double fp = MeasureFp([&](Key k) { return qf.MayContain(k); });
      double per_probe =
          static_cast<double>(counters.snapshot().bytes_read_aux -
                              before.bytes_read_aux) /
          kProbes;
      table.AddRow({"quotient", FmtU(bits),
                    Fmt("%.1f", qf.space_bytes() / 1024.0),
                    Fmt("%.5f", fp), Fmt("%.2f", per_probe), "YES"});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: at matched space, all three sit within a small\n"
      "factor in false-positive rate. The blocked filter touches exactly\n"
      "one cache line per probe (vs ~7 scattered bits); the quotient\n"
      "filter pays clustered probes and ~2x space for the one property the\n"
      "others lack -- deletability -- which is what Section 5's updatable\n"
      "approximate indexes need.\n");
}

void DeleteCycle() {
  Banner("Quotient filter under insert/delete churn (Bloom cannot do this)");
  Table table({"phase", "elements", "load", "fp rate"});
  RumCounters counters;
  QuotientFilter qf(15, 12, &counters);
  Rng rng(41);
  std::vector<Key> live;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 6000; ++i) {
      Key k = rng.Next();
      if (qf.Insert(k)) live.push_back(k);
    }
    for (int i = 0; i < 3000 && !live.empty(); ++i) {
      size_t idx = static_cast<size_t>(rng.NextBelow(live.size()));
      (void)qf.Delete(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    double fp = MeasureFp([&](Key k) { return qf.MayContain(k); });
    table.AddRow({"round " + FmtU(round + 1), FmtU(qf.element_count()),
                  Fmt("%.3f", qf.load_factor()), Fmt("%.5f", fp)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: the false-positive rate tracks the live load and\n"
      "does NOT ratchet upward across churn rounds -- deletes really\n"
      "remove fingerprints. A Bloom filter under the same churn would\n"
      "saturate monotonically.\n");
}

}  // namespace
}  // namespace rum

int main() {
  rum::bench::Banner(
      "A6: probabilistic structures -- Bloom vs blocked Bloom vs quotient "
      "filter");
  rum::Compare();
  rum::DeleteCycle();
  return 0;
}

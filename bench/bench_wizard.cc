// Ablation A5 -- Section 5's "access method wizard": does the analytic
// cost model pick the method that actually measures best?
//
// For six canonical workloads, the wizard's top pick is compared against
// the empirically cheapest method (total blocks touched per operation).
#include <limits>
#include <memory>

#include "bench/bench_util.h"
#include "adaptive/wizard.h"
#include "methods/factory.h"
#include "workload/runner.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::Table;

struct NamedSpec {
  const char* label;
  WorkloadSpec spec;
};

double MeasuredCost(std::string_view name, const WorkloadSpec& spec,
                    size_t load) {
  Options options;
  options.block_size = 4096;
  std::unique_ptr<AccessMethod> method = MakeAccessMethod(name, options);
  Result<RumProfile> profile =
      WorkloadRunner::LoadAndRun(method.get(), load, spec);
  if (!profile.ok()) return std::numeric_limits<double>::infinity();
  const CounterSnapshot& d = profile.value().delta;
  uint64_t ops = d.point_queries + d.range_queries + d.inserts + d.updates +
                 d.deletes;
  if (ops == 0) return std::numeric_limits<double>::infinity();
  // Block-equivalents of bytes touched per operation -- the same unit the
  // wizard predicts, and comparable between device-backed and
  // memory-resident structures.
  return static_cast<double>(d.total_bytes_read() +
                             d.total_bytes_written()) /
         static_cast<double>(options.block_size) /
         static_cast<double>(ops);
}

void Compare() {
  const size_t kLoad = 30000;
  const Key kRange = 1u << 16;
  std::vector<NamedSpec> workloads = {
      {"point-read-only", WorkloadSpec::ReadOnly(4000, kRange)},
      {"write-only", WorkloadSpec::WriteOnly(4000, kRange)},
      {"read-mostly", WorkloadSpec::ReadMostly(4000, kRange)},
      {"mixed", WorkloadSpec::Mixed(4000, kRange)},
      {"scan-heavy", WorkloadSpec::ScanHeavy(2000, kRange)},
  };
  {
    WorkloadSpec skewed = WorkloadSpec::Mixed(4000, kRange);
    skewed.distribution = KeyDistribution::kZipfian;
    workloads.push_back({"mixed-zipfian", skewed});
  }

  // Candidates both the wizard and the measurement loop consider (the
  // slowest scan-everything structures are excluded from measurement for
  // time, matching practical candidate sets).
  const std::vector<std::string_view> candidates = {
      "btree", "hash", "zonemap", "lsm-leveled",
      "lsm-tiered", "sorted-column", "skiplist", "stepped-merge",
      "bloom-zones"};

  Options options;
  options.block_size = 4096;
  RumWizard wizard(options);

  Banner("Wizard prediction vs measurement (blocks touched per op)");
  Table table({"workload", "wizard pick", "predicted", "measured best",
               "best blk/op", "pick blk/op", "pick rank"});
  Table weighted({"workload", "space_weight=0 pick", "space_weight=2 pick",
                  "space_weight=20 pick"});
  for (const NamedSpec& named : workloads) {
    // Wizard ranking filtered to the candidate set.
    std::vector<Recommendation> ranked =
        wizard.Rank(named.spec, kLoad);
    std::vector<Recommendation> filtered;
    for (const Recommendation& rec : ranked) {
      for (std::string_view c : candidates) {
        if (rec.method == c) {
          filtered.push_back(rec);
          break;
        }
      }
    }
    // Ground truth by measurement.
    std::string best;
    double best_cost = std::numeric_limits<double>::infinity();
    double pick_cost = std::numeric_limits<double>::infinity();
    for (std::string_view c : candidates) {
      double cost = MeasuredCost(c, named.spec, kLoad);
      if (cost < best_cost) {
        best_cost = cost;
        best = std::string(c);
      }
      if (c == filtered.front().method) pick_cost = cost;
    }
    size_t pick_rank = 0;
    for (size_t i = 0; i < filtered.size(); ++i) {
      if (filtered[i].method == best) pick_rank = i + 1;
    }
    table.AddRow({named.label, filtered.front().method,
                  Fmt("%.2f", filtered.front().predicted_cost), best,
                  Fmt("%.2f", best_cost), Fmt("%.2f", pick_cost),
                  "best is wizard #" + bench::FmtU(pick_rank)});
    // How scarcer storage shifts the recommendation (memory-resident
    // structures lose their free lunch).
    weighted.AddRow(
        {named.label, wizard.Recommend(named.spec, kLoad, 0.0).method,
         wizard.Recommend(named.spec, kLoad, 2.0).method,
         wizard.Recommend(named.spec, kLoad, 20.0).method});
  }
  table.Print();
  Banner("Recommendation vs storage scarcity (space_weight)");
  weighted.Print();
  std::printf(
      "\nExpected shape: the wizard's pick is the measured best (or within\n"
      "its top 3) on every workload; the pick's measured cost is close to\n"
      "the best's. An analytic model cannot be exact -- the point is that\n"
      "RUM reasoning selects the right family.\n");
}

}  // namespace
}  // namespace rum

int main() {
  rum::bench::Banner("A5: the RUM wizard -- predicted vs measured winners");
  rum::Compare();
  return 0;
}

// Experiment E3 -- the paper's Figure 1: popular data structures placed in
// the RUM design space.
//
// Every access method runs the same mixed, skewed workload; its measured
// (RO, UO, MO) is reported, and for the triangle rendering each axis is
// log-normalized across the population (the paper's figure is qualitative:
// what matters is who sits closer to which corner). Raw amplifications are
// printed alongside.
#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "methods/factory.h"
#include "workload/runner.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::Table;

struct Placement {
  std::string name;
  RumPoint point;
  double x = 0, y = 0;  // Population-normalized triangle coordinates.
};

// Converts each overhead into a population-relative efficiency in [0,1]
// (log scale; the best method on an axis scores 1) and projects the
// normalized efficiencies barycentrically onto the triangle.
void NormalizePlacements(std::vector<Placement>* placements) {
  auto axis = [&](auto getter) {
    double lo = 1e300, hi = -1e300;
    for (const Placement& p : *placements) {
      double v = std::log(std::max(1.0, getter(p.point)));
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::vector<double> eff;
    for (const Placement& p : *placements) {
      double v = std::log(std::max(1.0, getter(p.point)));
      eff.push_back(hi == lo ? 1.0 : 1.0 - (v - lo) / (hi - lo));
    }
    return eff;
  };
  std::vector<double> er = axis([](const RumPoint& p) { return p.read_overhead; });
  std::vector<double> eu = axis([](const RumPoint& p) { return p.update_overhead; });
  std::vector<double> em = axis([](const RumPoint& p) { return p.memory_overhead; });
  for (size_t i = 0; i < placements->size(); ++i) {
    double r = er[i] + 0.05, u = eu[i] + 0.05, m = em[i] + 0.05;
    double sum = r + u + m;
    // Corners: read (0.5, 1), write (0, 0), space (1, 0).
    (*placements)[i].x = (r * 0.5 + m * 1.0) / sum;
    (*placements)[i].y = r / sum;
  }
}

void PrintTriangle(const std::vector<Placement>& placements) {
  const int kW = 65;
  const int kH = 21;
  std::vector<std::string> canvas(kH, std::string(kW, ' '));
  auto plot = [&](double x, double y, char mark) {
    int col = static_cast<int>(x * (kW - 1) + 0.5);
    int row = static_cast<int>((1.0 - y) * (kH - 1) + 0.5);
    row = std::clamp(row, 0, kH - 1);
    col = std::clamp(col, 0, kW - 1);
    canvas[row][col] = mark;
  };
  for (int i = 0; i <= 40; ++i) {
    double t = i / 40.0;
    plot(0.5 * t, 1.0 * t, '.');
    plot(1.0 - 0.5 * t, 1.0 * t, '.');
    plot(t, 0.0, '.');
  }
  char mark = 'A';
  std::printf("  key:\n");
  for (const Placement& p : placements) {
    plot(p.x, p.y, mark);
    std::printf("   %c = %s\n", mark, p.name.c_str());
    ++mark;
  }
  std::printf("\n        READ optimized (top)\n");
  for (const std::string& line : canvas) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("  WRITE optimized              SPACE optimized\n");
}

void RunPopulation(const char* title, const WorkloadSpec& base_spec) {
  using namespace rum;
  bench::Banner(title);
  Options options;
  options.block_size = 4096;
  options.lsm.memtable_entries = 4096;
  options.zonemap.zone_entries = 4096;
  options.stepped.buffer_entries = 4096;
  options.bitmap.key_domain = 1u << 16;
  // A key domain much larger than N, so the direct-address structure's
  // unbounded MO is visible (Prop 1).
  options.extremes.magic_array_domain = 1u << 20;

  bench::Table table({"method", "RO", "UO", "MO", "x", "y", "abs region"});
  std::vector<Placement> placements;
  for (std::string_view name : AllAccessMethodNames()) {
    std::unique_ptr<AccessMethod> method = MakeAccessMethod(name, options);
    // The scan-everything structures (and the cascade-per-insert sorted
    // columns) use a reduced load so the bench stays fast; their relative
    // placement is unaffected.
    WorkloadSpec spec = base_spec;
    size_t load = 30000;
    if (name == "pure-log" || name == "dense-array" ||
        name == "unsorted-column" || name == "bloom-zones") {
      load = 4000;
      spec.operations = std::min<uint64_t>(spec.operations, 3000);
    }
    if (name == "sorted-column" || name == "sparse-index") {
      load = 10000;
      spec.operations = std::min<uint64_t>(spec.operations, 6000);
    }
    spec.key_range = load;
    Result<RumProfile> profile =
        WorkloadRunner::LoadAndRun(method.get(), load, spec);
    if (!profile.ok()) {
      std::printf("%s failed: %s\n", std::string(name).c_str(),
                  profile.status().ToString().c_str());
      continue;
    }
    placements.push_back(Placement{std::string(name), profile.value().point});
  }
  NormalizePlacements(&placements);
  for (const Placement& p : placements) {
    table.AddRow({p.name, bench::Fmt("%.2f", p.point.read_overhead),
                  bench::Fmt("%.2f", p.point.update_overhead),
                  bench::Fmt("%.3f", p.point.memory_overhead),
                  bench::Fmt("%.3f", p.x), bench::Fmt("%.3f", p.y),
                  std::string(RumRegionName(p.point.Classify()))});
  }
  table.Print();
  std::printf("\n");
  PrintTriangle(placements);
}

}  // namespace
}  // namespace rum

int main() {
  using namespace rum;
  bench::Banner(
      "E3: Figure 1 of the paper -- access methods in the RUM space");

  // Uniform keys (so no method hides behind its write buffer) and a read
  // mix of point and range queries, the blend Figure 1 implies.
  WorkloadSpec balanced;
  balanced.operations = 20000;
  balanced.insert_fraction = 0.20;
  balanced.update_fraction = 0.10;
  balanced.delete_fraction = 0.05;
  balanced.scan_fraction = 0.15;
  balanced.scan_selectivity = 0.002;
  RunPopulation("Population under a balanced mixed workload", balanced);

  // The paper stresses that a structure's RUM behaviour depends on the
  // workload: re-measure the same population under heavy ingest.
  WorkloadSpec write_heavy;
  write_heavy.operations = 20000;
  write_heavy.insert_fraction = 0.70;
  write_heavy.update_fraction = 0.15;
  write_heavy.delete_fraction = 0.05;
  write_heavy.scan_fraction = 0.02;
  write_heavy.scan_selectivity = 0.002;
  RunPopulation("Same population under a write-heavy workload", write_heavy);

  std::printf(
      "\nExpected shape (paper Fig. 1): trees/hash/skiplist/trie toward the\n"
      "read corner; LSM/stepped-merge/pbt/pure-log toward the write corner;\n"
      "zonemap/sparse-index/imprints/bitmap/bloom-zones/dense-array toward\n"
      "the space corner; cracking and hot-cold in the adaptive middle. The\n"
      "write-heavy pass shifts every differential structure further toward\n"
      "the write corner -- position in the space is workload-relative.\n");
  return 0;
}

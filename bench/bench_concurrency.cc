// Concurrency sweep: threads x shards for sharded access methods, driven by
// the parallel WorkloadRunner. Reports wall-clock throughput plus the merged
// RUM amplifications, showing (a) the scaling curve of per-shard locking,
// (b) that the merged accounting stays on the same amplification floors as
// the serial runner, and (c) the cost of over-sharding a serial workload.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/memory_arbiter.h"
#include "bench/bench_util.h"
#include "core/access_method.h"
#include "core/memory_budget.h"
#include "core/metrics.h"
#include "methods/factory.h"
#include "methods/lsm/lsm_tree.h"
#include "service/open_loop.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "workload/runner.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::FmtU;
using bench::Table;

size_t g_preload = 50000;
uint64_t g_ops = 200000;
constexpr Key kRange = 1u << 18;

// One row of BENCH_concurrency.json: configuration, throughput, the merged
// RUM amplifications, and the merged per-op-class latency histograms
// (worker-local recording, merged after the join) for that run.
struct JsonRow {
  std::string method;
  uint32_t threads;
  size_t shards;
  double wall_ms;
  double mops_per_sec;
  double read_overhead;
  double update_overhead;
  double memory_overhead;
  uint64_t ops;
  std::string latency_json;
};

std::vector<JsonRow>& JsonRows() {
  static std::vector<JsonRow> rows;
  return rows;
}

// One row of the "saturation" JSON section: open-loop offered load through
// the request scheduler, with and without admission control (EXPERIMENTS.md
// A9). Latencies and goodput are virtual-time quantities, so these rows are
// exactly reproducible.
struct SatRow {
  std::string method;
  double load_factor;
  bool admission;
  double offered_ops_per_sec;
  double goodput_ops_per_sec;
  uint64_t p99_total_us;
  uint64_t completed;
  uint64_t shed;
  uint64_t deadline_missed;
  uint64_t max_queue_depth;
};

std::vector<SatRow>& SatRows() {
  static std::vector<SatRow> rows;
  return rows;
}

// One row of the "memory_pressure" JSON section: a static or arbitrated
// split of one global byte budget driven through the phase-shifting
// hot-read / write-burst workload (EXPERIMENTS.md A10). The score is bytes
// that reached the base device -- the traffic memory failed to absorb.
struct MemRow {
  std::string config;
  bool arbitrated;
  uint64_t budget_bytes;
  uint64_t base_traffic_bytes;
  uint64_t cache_bytes;
  uint64_t memtable_bytes;
  uint64_t filter_bytes;
  uint64_t replans;
};

std::vector<MemRow>& MemRows() {
  static std::vector<MemRow> rows;
  return rows;
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  const std::vector<JsonRow>& rows = JsonRows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"threads\": %u, \"shards\": %zu, "
        "\"wall_ms\": %.3f, \"mops_per_sec\": %.4f, \"RO\": %.4f, "
        "\"UO\": %.4f, \"MO\": %.4f, \"ops\": %llu, \"latency_ns\": %s}%s\n",
        r.method.c_str(), r.threads, r.shards, r.wall_ms, r.mops_per_sec,
        r.read_overhead, r.update_overhead, r.memory_overhead,
        static_cast<unsigned long long>(r.ops), r.latency_json.c_str(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"memory_pressure\": [\n");
  const std::vector<MemRow>& mem = MemRows();
  for (size_t i = 0; i < mem.size(); ++i) {
    const MemRow& r = mem[i];
    std::fprintf(
        f,
        "    {\"config\": \"%s\", \"arbitrated\": %s, "
        "\"budget_bytes\": %llu, \"base_traffic_bytes\": %llu, "
        "\"cache_bytes\": %llu, \"memtable_bytes\": %llu, "
        "\"filter_bytes\": %llu, \"replans\": %llu}%s\n",
        r.config.c_str(), r.arbitrated ? "true" : "false",
        static_cast<unsigned long long>(r.budget_bytes),
        static_cast<unsigned long long>(r.base_traffic_bytes),
        static_cast<unsigned long long>(r.cache_bytes),
        static_cast<unsigned long long>(r.memtable_bytes),
        static_cast<unsigned long long>(r.filter_bytes),
        static_cast<unsigned long long>(r.replans),
        i + 1 < mem.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"saturation\": [\n");
  const std::vector<SatRow>& sat = SatRows();
  for (size_t i = 0; i < sat.size(); ++i) {
    const SatRow& r = sat[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"load_factor\": %.2f, \"admission\": %s, "
        "\"offered_ops_per_sec\": %.0f, \"goodput_ops_per_sec\": %.0f, "
        "\"p99_total_us\": %llu, \"completed\": %llu, \"shed\": %llu, "
        "\"deadline_missed\": %llu, \"max_queue_depth\": %llu}%s\n",
        r.method.c_str(), r.load_factor, r.admission ? "true" : "false",
        r.offered_ops_per_sec, r.goodput_ops_per_sec,
        static_cast<unsigned long long>(r.p99_total_us),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.deadline_missed),
        static_cast<unsigned long long>(r.max_queue_depth),
        i + 1 < sat.size() ? "," : "");
  }
  // The registry runs enabled for the whole sweep, so this carries the
  // cross-run owned counters (e.g. sharded_method.stats_merges -- a handful
  // per run now that the runner samples costs without merging shard stats).
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n",
               MetricsRegistry::Global().ToJson().c_str());
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", rows.size(), path);
}

Options BenchOptions(size_t shards) {
  Options options;
  options.block_size = 4096;
  options.sharded.shards = shards;
  return options;
}

WorkloadSpec MixedSpec(uint32_t threads) {
  WorkloadSpec spec;
  spec.operations = g_ops;
  spec.key_range = kRange;
  spec.insert_fraction = 0.25;
  spec.update_fraction = 0.15;
  spec.delete_fraction = 0.10;
  spec.scan_fraction = 0;  // Keep runs comparable: scans fan out to all
                           // shards and serialize the sweep's upper rows.
  spec.seed = 42;
  spec.concurrency = threads;
  return spec;
}

void SweepMethod(const std::string& inner) {
  Banner(("threads x shards sweep: sharded-" + inner).c_str());
  Table table({"threads", "shards", "wall ms", "Mops/s", "speedup", "RO",
               "UO", "MO", "ops", "get p99 us"});
  double baseline_ms = 0;
  for (size_t shards : {1, 2, 4, 8}) {
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      auto method =
          MakeAccessMethod("sharded-" + inner, BenchOptions(shards));
      if (method == nullptr) {
        std::printf("  (unknown method sharded-%s)\n", inner.c_str());
        return;
      }
      WorkloadSpec spec = MixedSpec(threads);
      auto start = std::chrono::steady_clock::now();
      Result<RumProfile> profile =
          WorkloadRunner::LoadAndRun(method.get(), g_preload, spec);
      auto stop = std::chrono::steady_clock::now();
      if (!profile.ok()) {
        std::printf("  run failed: %s\n", profile.status().ToString().c_str());
        return;
      }
      double ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
      if (baseline_ms == 0) baseline_ms = ms;
      const CounterSnapshot& d = profile.value().delta;
      const OpLatencies& latency = profile.value().latency;
      JsonRows().push_back(JsonRow{
          "sharded-" + inner, threads, shards, ms,
          static_cast<double>(g_ops) / (ms * 1000.0),
          d.read_amplification(), d.write_amplification(),
          d.space_amplification(),
          d.inserts + d.updates + d.deletes + d.point_queries +
              d.range_queries,
          latency.ToJson()});
      table.AddRow({FmtU(threads), FmtU(shards), Fmt("%.1f", ms),
                    Fmt("%.2f", static_cast<double>(g_ops) / (ms * 1000.0)),
                    Fmt("%.2fx", baseline_ms / ms),
                    Fmt("%.2f", d.read_amplification()),
                    Fmt("%.2f", d.write_amplification()),
                    Fmt("%.2f", d.space_amplification()),
                    FmtU(d.inserts + d.updates + d.deletes + d.point_queries +
                         d.range_queries),
                    Fmt("%.1f", static_cast<double>(
                                    latency.point.Percentile(0.99)) /
                                    1000.0)});
    }
  }
  table.Print();
  std::printf(
      "\nNote: workers cap at the shard count (threads > shards rows repeat\n"
      "the capped configuration), and the runner keys each worker to its own\n"
      "partitions, so 'speedup' reflects per-shard locking, not oversubscription.\n");
}

// Scan-heavy "analytics" rows: half the operations are range scans
// (WorkloadSpec::ScanHeavy), the workload the cross-run sorted view
// targets. Scans fan out to every shard, so this sweep is deliberately
// small -- it shows scan throughput under per-shard locking and the cost
// of sharding a scan-bound workload, not a scaling curve.
void SweepAnalytics(const std::string& inner) {
  Banner(("analytics (scan-heavy) sweep: sharded-" + inner).c_str());
  Table table({"threads", "shards", "wall ms", "Mops/s", "RO", "UO", "MO",
               "ops", "scan p99 us"});
  // Scans touch ~260 records each at the default selectivity; fewer ops
  // keep the row's wall clock in line with the mixed sweeps.
  const uint64_t ops = g_ops / 10;
  for (size_t shards : {1, 4}) {
    for (uint32_t threads : {1u, 4u}) {
      auto method =
          MakeAccessMethod("sharded-" + inner, BenchOptions(shards));
      if (method == nullptr) {
        std::printf("  (unknown method sharded-%s)\n", inner.c_str());
        return;
      }
      WorkloadSpec spec = WorkloadSpec::ScanHeavy(ops, kRange);
      spec.seed = 42;
      spec.concurrency = threads;
      auto start = std::chrono::steady_clock::now();
      Result<RumProfile> profile =
          WorkloadRunner::LoadAndRun(method.get(), g_preload, spec);
      auto stop = std::chrono::steady_clock::now();
      if (!profile.ok()) {
        std::printf("  run failed: %s\n", profile.status().ToString().c_str());
        return;
      }
      double ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
      const CounterSnapshot& d = profile.value().delta;
      const OpLatencies& latency = profile.value().latency;
      JsonRows().push_back(JsonRow{
          "analytics/sharded-" + inner, threads, shards, ms,
          static_cast<double>(ops) / (ms * 1000.0),
          d.read_amplification(), d.write_amplification(),
          d.space_amplification(),
          d.inserts + d.updates + d.deletes + d.point_queries +
              d.range_queries,
          latency.ToJson()});
      table.AddRow(
          {FmtU(threads), FmtU(shards), Fmt("%.1f", ms),
           Fmt("%.2f", static_cast<double>(ops) / (ms * 1000.0)),
           Fmt("%.2f", d.read_amplification()),
           Fmt("%.2f", d.write_amplification()),
           Fmt("%.2f", d.space_amplification()),
           FmtU(d.inserts + d.updates + d.deletes + d.point_queries +
                d.range_queries),
           Fmt("%.1f",
               static_cast<double>(latency.scan.Percentile(0.99)) /
                   1000.0)});
    }
  }
  table.Print();
}

// ------------------------------------------------- Saturation sweep (A9)

Options SatOptions() {
  Options options;
  options.block_size = 4096;
  options.service.enabled = true;
  options.service.dispatch_overhead_us = 8;
  options.service.op_cost_us = 2;
  options.service.scan_cost_us = 16;
  options.service.slo_us = 20000;
  return options;
}

WorkloadSpec SatSpec(uint64_t ops, double offered) {
  WorkloadSpec spec;
  spec.operations = ops;
  spec.key_range = 1u << 12;
  spec.distribution = KeyDistribution::kZipfian;
  spec.insert_fraction = 0.1;
  spec.seed = 42;
  spec.error_mode = ErrorMode::kSkipAndCount;
  spec.arrival = ArrivalProcess::kPoisson;
  spec.offered_ops_per_sec = offered;
  return spec;
}

std::unique_ptr<AccessMethod> SatMethod(const std::string& inner) {
  // Built bare: RunOpenLoop constructs the scheduler under measurement.
  Options options;
  options.block_size = 4096;
  auto method = MakeAccessMethod(inner, options);
  if (method != nullptr) {
    for (Key k = 0; k < (1u << 12); ++k) {
      Status s = method->Insert(k, k * 2654435761u);
      if (!s.ok()) {
        std::printf("  prefill failed: %s\n", s.ToString().c_str());
        return nullptr;
      }
    }
  }
  return method;
}

// Offered load {0.5, 1, 2, 4}x measured capacity, admission on and off.
// The interesting quadrant is >= 2x with admission off: the queue grows
// without bound (bufferbloat) and goodput collapses even though every
// request eventually completes. Admission trades those completions for
// sheds and keeps the served tail inside the SLO.
void SweepSaturation(const std::string& inner) {
  Banner(("saturation sweep (A9): open-loop " + inner +
          " behind the request scheduler")
             .c_str());
  // Fixed op count even under --smoke: the sweep runs on the virtual
  // clock, so 40k requests cost milliseconds of wall time, and the >= 2x
  // rows need a long enough backlog for the bufferbloat tail to show.
  const uint64_t ops = 40000;

  // Measured capacity: overdrive an unbounded no-admission queue; the
  // server never idles, so completions per virtual second = service rate.
  double capacity = 0;
  {
    auto method = SatMethod(inner);
    if (method == nullptr) return;
    Options options = SatOptions();
    options.service.admission = false;
    options.service.queue_capacity = 1u << 20;
    options.service.slo_us = 0;
    Result<ServiceReport> r =
        RunOpenLoop(method.get(), SatSpec(ops, 50e6), options);
    if (!r.ok()) {
      std::printf("  capacity run failed: %s\n",
                  r.status().ToString().c_str());
      return;
    }
    const ServiceStats& s = r.value().stats;
    capacity = static_cast<double>(s.completed) * 1e6 /
               static_cast<double>(s.end_us);
  }
  std::printf("  measured capacity: %.0f ops/s (virtual)\n\n", capacity);

  Table table({"load", "admission", "offered/s", "goodput/s", "p99 us",
               "completed", "shed", "ddl miss", "max depth"});
  for (double factor : {0.5, 1.0, 2.0, 4.0}) {
    for (bool admission : {true, false}) {
      auto method = SatMethod(inner);
      if (method == nullptr) return;
      Options options = SatOptions();
      options.service.admission = admission;
      options.service.queue_capacity = admission ? 1024 : (1u << 20);
      options.service.deadline_us = 100000;
      Result<ServiceReport> r = RunOpenLoop(
          method.get(), SatSpec(ops, factor * capacity), options);
      if (!r.ok()) {
        std::printf("  run failed: %s\n", r.status().ToString().c_str());
        return;
      }
      const ServiceStats& s = r.value().stats;
      SatRows().push_back(SatRow{
          inner, factor, admission, factor * capacity,
          s.goodput_ops_per_sec(), s.total_us.Percentile(0.99), s.completed,
          s.shed, s.deadline_missed, s.max_queue_depth});
      table.AddRow({Fmt("%.1fx", factor), admission ? "on" : "off",
                    Fmt("%.0f", factor * capacity),
                    Fmt("%.0f", s.goodput_ops_per_sec()),
                    FmtU(s.total_us.Percentile(0.99)), FmtU(s.completed),
                    FmtU(s.shed), FmtU(s.deadline_missed),
                    FmtU(s.max_queue_depth)});
    }
  }
  table.Print();
  std::printf(
      "\nReading the table: below capacity the two admission rows match\n"
      "(nothing sheds). At and above capacity, 'off' rows let queue delay\n"
      "grow with the backlog -- p99 blows through the SLO and goodput\n"
      "(completions inside the SLO per virtual second) collapses -- while\n"
      "'on' rows shed the excess at the front door and keep the served\n"
      "tail flat.\n");
}

// ---------------------------------------------- Memory-pressure sweep (A10)

// The memory_arbiter_test acceptance case at bench scale: one global byte
// budget, three static splits vs the adaptive arbiter, scored on bytes of
// base-device traffic under a phase-shifting hot-read / write-burst
// workload. Serial and fully seeded: the rows are exactly reproducible.
void SweepMemoryPressure() {
  Banner(
      "memory-pressure sweep (A10): static splits vs the adaptive arbiter");
  constexpr size_t kBlock = 512;
  constexpr Key kLoad = 4000;
  constexpr Key kHot = 1500;
  constexpr int kReadsPerPhase = 8000;
  constexpr Key kWritesPerPhase = 4000;
  // Every configuration spends the same total: cache pages + memtable
  // entries (32 bytes each) + bloom seed (1 byte/entry at 8 bits/key).
  const uint64_t budget = 48 * kBlock + 768 * 32 + 8 * 768 / 8;

  struct Config {
    const char* name;
    size_t cache_pages;
    size_t memtable_entries;
    bool arbitrated;
  };
  const Config configs[] = {
      {"static/read-tilted", 80, 271, false},
      {"static/balanced", 48, 768, false},
      {"static/write-tilted", 16, 1264, false},
      {"arbitrated", 48, 768, true},
  };

  Table table({"config", "base traffic KiB", "cache B", "memtable B",
               "filter B", "replans"});
  for (const Config& c : configs) {
    MemoryArbiter arbiter({.budget_bytes = budget, .epoch_ops = 512});
    Options options;
    options.block_size = kBlock;
    options.lsm.memtable_entries = c.memtable_entries;
    options.lsm.size_ratio = 3;
    options.lsm.bloom_bits_per_key = 8;
    options.memory.enabled = c.arbitrated;
    options.memory.arbiter = c.arbitrated ? &arbiter : nullptr;

    RumCounters base_counters;
    BlockDevice base(kBlock, &base_counters);
    CachingDevice cache(&base, c.cache_pages,
                        c.arbitrated ? &arbiter : nullptr);
    LsmTree tree(options, &cache);

    Key next_key = kLoad;
    for (Key k = 0; k < kLoad; ++k) {
      (void)tree.Insert(k, k * 2654435761u);
    }
    for (int cycle = 0; cycle < 2; ++cycle) {
      for (int i = 0; i < kReadsPerPhase; ++i) {
        (void)tree.Get(static_cast<Key>(i) % kHot);
      }
      for (Key w = 0; w < kWritesPerPhase; ++w) {
        Key k = next_key++;
        (void)tree.Insert(k, k * 2654435761u);
      }
    }

    CounterSnapshot s = base_counters.snapshot();
    uint64_t traffic = s.bytes_read_base + s.bytes_read_aux +
                       s.bytes_written_base + s.bytes_written_aux;
    MemorySplit split = c.arbitrated ? arbiter.split() : MemorySplit{};
    MemRows().push_back(MemRow{c.name, c.arbitrated, budget, traffic,
                               split.cache_bytes, split.memtable_bytes,
                               split.filter_bytes, split.replans});
    table.AddRow({c.name, Fmt("%.1f", static_cast<double>(traffic) / 1024.0),
                  FmtU(split.cache_bytes), FmtU(split.memtable_bytes),
                  FmtU(split.filter_bytes), FmtU(split.replans)});
  }
  table.Print();
  std::printf(
      "\nReading the table: every row spends the same %llu-byte budget. The\n"
      "static splits each win one phase and lose the other; the arbitrated\n"
      "row re-splits at epoch boundaries (cache bytes up in read phases,\n"
      "memtable bytes up in write bursts) and posts the lowest base-device\n"
      "traffic overall.\n",
      static_cast<unsigned long long>(budget));
}

}  // namespace
}  // namespace rum

int main(int argc, char** argv) {
  // --smoke: a fast configuration for CI that still produces the full JSON
  // schema (fewer ops, same sweep shape).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      rum::g_preload = 2000;
      rum::g_ops = 5000;
    }
  }
  // Metrics on for the whole sweep: callback gauges come and go with each
  // per-row stack; the owned counters accumulate and land in the JSON's
  // "metrics" section.
  rum::MetricsRegistry::Global().set_enabled(true);
  rum::bench::Banner(
      "Concurrency sweep: parallel runner over sharded methods "
      "(mixed read/write, zero-scan workload)");
  rum::SweepMethod("btree");
  rum::SweepMethod("hash");
  rum::SweepMethod("lsm-leveled");
  rum::SweepAnalytics("lsm-tiered");
  rum::SweepSaturation("skiplist");
  rum::SweepMemoryPressure();
  std::printf(
      "\nExpected shape: throughput climbs with threads until threads ==\n"
      "shards, then flattens; amplifications stay within noise of the\n"
      "1-thread row because the merged counters are exact regardless of\n"
      "interleaving.\n");
  rum::WriteJson("BENCH_concurrency.json");
  return 0;
}

#ifndef RUMLAB_BENCH_BENCH_UTIL_H_
#define RUMLAB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/rum_point.h"

namespace rum {
namespace bench {

/// A 2-D triangle position (read corner top at (0.5, 1), write bottom-left
/// at (0, 0), space bottom-right at (1, 0)).
struct TrianglePos {
  double x = 0;
  double y = 0;
};

/// Projects a population of RUM points onto the triangle using
/// log-normalized, population-relative efficiencies per axis (the best
/// method on an axis scores 1). The paper's figures are qualitative; this
/// makes "closer to a corner" mean "better than the others on that axis".
inline std::vector<TrianglePos> NormalizeTriangle(
    const std::vector<RumPoint>& points) {
  auto axis = [&](auto getter) {
    double lo = 1e300, hi = -1e300;
    for (const RumPoint& p : points) {
      double v = std::log(std::max(1.0, getter(p)));
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::vector<double> eff;
    for (const RumPoint& p : points) {
      double v = std::log(std::max(1.0, getter(p)));
      eff.push_back(hi == lo ? 1.0 : 1.0 - (v - lo) / (hi - lo));
    }
    return eff;
  };
  std::vector<double> er =
      axis([](const RumPoint& p) { return p.read_overhead; });
  std::vector<double> eu =
      axis([](const RumPoint& p) { return p.update_overhead; });
  std::vector<double> em =
      axis([](const RumPoint& p) { return p.memory_overhead; });
  std::vector<TrianglePos> out(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    double r = er[i] + 0.05, u = eu[i] + 0.05, m = em[i] + 0.05;
    double sum = r + u + m;
    out[i].x = (r * 0.5 + m * 1.0) / sum;
    out[i].y = r / sum;
  }
  return out;
}

/// Minimal fixed-width table printer for bench output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    PrintRow(headers_, widths);
    std::string rule;
    for (size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c], '-');
      if (c + 1 < widths.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      PrintRow(row, widths);
    }
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s", static_cast<int>(widths[c]), cell.c_str());
      if (c + 1 < widths.size()) std::printf(" | ");
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return std::string(buf);
}

inline std::string FmtU(unsigned long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", value);
  return std::string(buf);
}

inline void Banner(const char* title) {
  std::printf("\n=== %s ===\n\n", title);
}

}  // namespace bench
}  // namespace rum

#endif  // RUMLAB_BENCH_BENCH_UTIL_H_

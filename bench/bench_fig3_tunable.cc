// Experiment E5 -- the paper's Figure 3: tunable behavior in the RUM space.
//
// Three tunable access methods each trace a *curve* through the triangle
// instead of sitting at a point:
//   1. MorphingAccessMethod sweeping its RUM priorities (Section 5's
//      morphing access methods);
//   2. a B+-Tree sweeping its node size (Section 5's "dynamically tuned
//      parameters, including ... node size");
//   3. an LSM sweeping its size ratio T and merge policy (Section 5's
//      "changing the number of merge trees ... and the frequency of
//      merging").
//
// Each sweep runs the same phased workload -- a random-insert churn phase
// (measures UO), a point-read phase (measures RO), with MO read at the end
// -- and the sweep's points are projected onto the triangle relative to
// each other.
#include <memory>

#include "adaptive/morphing.h"
#include "bench/bench_util.h"
#include "methods/btree/btree.h"
#include "methods/lsm/lsm_tree.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::FmtU;
using bench::Table;
using bench::TrianglePos;

constexpr size_t kChurn = 50000;
constexpr Key kRange = 1u << 17;
constexpr int kReads = 4000;

/// Insert churn, then point reads; returns a phase-composed RUM point.
RumPoint MeasurePhases(AccessMethod* method) {
  Rng rng(14);
  for (size_t i = 0; i < kChurn; ++i) {
    (void)method->Insert(rng.NextBelow(kRange), i);
  }
  (void)method->Flush();
  double uo = method->stats().write_amplification();
  method->ResetStats();
  for (int i = 0; i < kReads; ++i) {
    (void)method->Get(rng.NextBelow(kRange));
  }
  double ro = method->stats().read_amplification();
  double mo = method->stats().space_amplification();
  RumPoint p;
  p.read_overhead = std::max(1.0, ro);
  p.update_overhead = std::max(1.0, uo);
  p.memory_overhead = std::max(1.0, mo);
  return p;
}

void PrintSweep(const char* title, const std::vector<std::string>& labels,
                const std::vector<RumPoint>& points,
                const std::vector<std::string>& extra_header,
                const std::vector<std::string>& extra) {
  Banner(title);
  std::vector<TrianglePos> pos = bench::NormalizeTriangle(points);
  std::vector<std::string> headers = {"setting", "RO", "UO", "MO",
                                      "x", "y"};
  headers.insert(headers.end(), extra_header.begin(), extra_header.end());
  Table table(headers);
  for (size_t i = 0; i < points.size(); ++i) {
    std::vector<std::string> row = {
        labels[i], Fmt("%.1f", points[i].read_overhead),
        Fmt("%.2f", points[i].update_overhead),
        Fmt("%.3f", points[i].memory_overhead), Fmt("%.3f", pos[i].x),
        Fmt("%.3f", pos[i].y)};
    if (i < extra.size()) row.push_back(extra[i]);
    table.AddRow(std::move(row));
  }
  table.Print();
}

void MorphingSweep() {
  struct Target {
    double r, u, m;
  };
  std::vector<std::string> labels;
  std::vector<RumPoint> points;
  std::vector<std::string> shapes;
  for (const Target& t : {Target{1, 10, 1}, Target{5, 5, 1},
                          Target{10, 1, 1}, Target{2, 2, 10}}) {
    Options options;
    options.morphing.read_priority = t.r;
    options.morphing.write_priority = t.u;
    options.morphing.space_priority = t.m;
    MorphingAccessMethod method(options);
    points.push_back(MeasurePhases(&method));
    char prio[48];
    std::snprintf(prio, sizeof(prio), "(R=%.0f U=%.0f M=%.0f)", t.r, t.u,
                  t.m);
    labels.push_back(prio);
    shapes.push_back(std::string(MorphShapeName(method.shape())));
  }
  PrintSweep("Morphing access method: priority sweep", labels, points,
             {"shape"}, shapes);
}

void BTreeNodeSizeSweep() {
  std::vector<std::string> labels;
  std::vector<RumPoint> points;
  std::vector<std::string> heights;
  for (size_t node : {1024u, 2048u, 4096u, 8192u, 16384u}) {
    Options options;
    options.btree.node_size = node;
    BTree tree(options);
    points.push_back(MeasurePhases(&tree));
    labels.push_back("node=" + bench::FmtU(node));
    heights.push_back(bench::FmtU(tree.height()));
  }
  PrintSweep("B+-Tree: node-size sweep", labels, points, {"height"},
             heights);
}

void BTreeBulkFillSweep() {
  // The bulk_fill knob: slack in the leaves is memory spent to absorb
  // future inserts without splits -- M for U directly.
  std::vector<std::string> labels;
  std::vector<RumPoint> points;
  std::vector<std::string> extra;
  for (double fill : {0.5, 0.7, 0.9, 1.0}) {
    Options options;
    options.btree.bulk_fill = fill;
    BTree tree(options);
    // Load even keys, then churn the odd gaps.
    std::vector<Entry> entries = MakeSortedEntries(40000, 0, 2);
    (void)tree.BulkLoad(entries);
    tree.ResetStats();
    // Churn sized below the smallest configuration's slack, so the knob's
    // split-avoidance effect is visible rather than exhausted.
    Rng rng(16);
    for (int i = 0; i < 5000; ++i) {
      (void)tree.Insert(rng.NextBelow(40000) * 2 + 1, i);
    }
    double uo = tree.stats().write_amplification();
    tree.ResetStats();
    for (int i = 0; i < kReads; ++i) {
      (void)tree.Get(rng.NextBelow(40000) * 2);
    }
    RumPoint p;
    p.read_overhead = std::max(1.0, tree.stats().read_amplification());
    p.update_overhead = std::max(1.0, uo);
    p.memory_overhead =
        std::max(1.0, tree.stats().space_amplification());
    points.push_back(p);
    labels.push_back("fill=" + bench::Fmt("%.1f", fill));
    extra.push_back(bench::FmtU(tree.height()));
  }
  PrintSweep("B+-Tree: bulk-fill sweep (leaf slack absorbs inserts)",
             labels, points, {"height"}, extra);
}

void LsmSweep() {
  std::vector<std::string> labels;
  std::vector<RumPoint> points;
  std::vector<std::string> runs;
  for (LsmPolicy policy :
       {LsmPolicy::kLeveled, LsmPolicy::kTiered}) {
    for (size_t ratio : {2u, 4u, 8u}) {
      Options options;
      options.lsm.size_ratio = ratio;
      options.lsm.memtable_entries = 2048;
      options.lsm.policy = policy;
      LsmTree tree(options);
      points.push_back(MeasurePhases(&tree));
      labels.push_back(
          std::string(policy == LsmPolicy::kLeveled ? "leveled"
                                                           : "tiered") +
          " T=" + bench::FmtU(ratio));
      runs.push_back(bench::FmtU(tree.total_runs()));
    }
  }
  PrintSweep("LSM: merge policy x size-ratio sweep", labels, points,
             {"runs"}, runs);
}

}  // namespace
}  // namespace rum

int main() {
  rum::bench::Banner(
      "E5: Figure 3 of the paper -- tunable access methods covering areas "
      "of the RUM space");
  rum::MorphingSweep();
  rum::BTreeNodeSizeSweep();
  rum::BTreeBulkFillSweep();
  rum::LsmSweep();
  std::printf(
      "\nExpected shape (paper Fig. 3): each knob sweep moves the measured\n"
      "point through the space -- one access method covering an area, not\n"
      "a point. The morphing method jumps between shape regimes; the\n"
      "B+-Tree and LSM slide continuously along their tradeoff curves.\n");
  return 0;
}

// Experiment E1 -- the paper's Propositions 1-3 (Section 2).
//
// For each structure that minimizes exactly one RUM overhead, measure all
// three overheads across a size sweep and confirm:
//   Prop 1 (MagicArray): RO = 1.0 => UO = 2.0 (ChangeKey) and MO -> inf.
//   Prop 2 (PureLog):    UO = 1.0 => RO and MO grow with every update.
//   Prop 3 (DenseArray): MO = 1.0 => RO = N (scan) and UO = 1.0.
#include <memory>

#include "bench/bench_util.h"
#include "methods/extremes/dense_array.h"
#include "methods/extremes/magic_array.h"
#include "methods/extremes/pure_log.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::FmtU;
using bench::Table;

void BenchMagicArray() {
  Banner("Prop 1: MagicArray (min RO=1.0 => UO=2.0, MO unbounded)");
  Table table({"N", "domain", "RO(get)", "UO(change)", "MO", "paper"});
  for (size_t n : {1u << 10, 1u << 12, 1u << 14, 1u << 16}) {
    Options options;
    options.extremes.magic_array_domain = 1u << 20;
    MagicArray array(options);
    std::vector<Entry> entries = MakeSortedEntries(n, 0, 4);
    (void)array.BulkLoad(entries);
    array.ResetStats();
    Rng rng(1);
    for (size_t i = 0; i < 2000; ++i) {
      (void)array.Get(rng.NextBelow(n) * 4);
    }
    double ro = array.stats().read_amplification();
    array.ResetStats();
    for (size_t i = 0; i < 1000; ++i) {
      Key victim = rng.NextBelow(n) * 4;
      if (array.Get(victim).ok()) {
        // Paper's "change a value": move it to a new position.
        (void)array.ChangeKey(victim, victim + 1);
        (void)array.ChangeKey(victim + 1, victim);
      }
    }
    CounterSnapshot snap = array.stats();
    // Measure UO of the ChangeKey ops alone (the gets above added reads).
    double uo = snap.write_amplification();
    double mo = snap.space_amplification();
    table.AddRow({FmtU(n), FmtU(1u << 20), Fmt("%.3f", ro), Fmt("%.3f", uo),
                  Fmt("%.1f", mo),
                  "RO=1.0 UO=2.0 MO=" + Fmt("%.1f", (1u << 20) / double(n))});
  }
  table.Print();
}

void BenchPureLog() {
  Banner("Prop 2: PureLog (min UO=1.0 => RO, MO grow with updates)");
  Table table(
      {"updates", "live", "UO", "entries-read/miss", "MO", "paper"});
  Options options;
  PureLog log(options);
  Rng rng(2);
  const Key kLive = 512;
  uint64_t total_updates = 0;
  for (int round = 0; round < 5; ++round) {
    size_t burst = 1000u << round;
    for (size_t i = 0; i < burst; ++i) {
      (void)log.Insert(rng.NextBelow(kLive), i);
    }
    total_updates += burst;
    double uo = log.stats().write_amplification();
    double mo = log.stats().space_amplification();
    // Worst-case read: a key with no newer version forces a full backward
    // scan of the ever-growing log.
    CounterSnapshot before = log.stats();
    for (int q = 0; q < 20; ++q) {
      (void)log.Get(kLive + q);  // Absent: scans the whole log.
    }
    CounterSnapshot delta = log.stats() - before;
    double scan_entries = static_cast<double>(delta.total_bytes_read()) /
                          kEntrySize / 20.0;
    table.AddRow({FmtU(total_updates), FmtU(log.size()), Fmt("%.3f", uo),
                  Fmt("%.0f", scan_entries), Fmt("%.1f", mo),
                  "UO=1.0, RO and MO increase monotonically"});
  }
  table.Print();
}

void BenchDenseArray() {
  Banner("Prop 3: DenseArray (min MO=1.0 => RO=N scan, UO=1.0)");
  Table table({"N", "MO", "RO(get)", "entries-read/get", "UO(update)",
               "paper"});
  for (size_t n : {1u << 10, 1u << 12, 1u << 14}) {
    Options options;
    DenseArray array(options);
    std::vector<Entry> entries = MakeSortedEntries(n);
    (void)array.BulkLoad(entries);
    double mo = array.stats().space_amplification();
    array.ResetStats();
    Rng rng(3);
    const int kQueries = 200;
    for (int q = 0; q < kQueries; ++q) {
      (void)array.Get(rng.NextBelow(n));
    }
    CounterSnapshot reads = array.stats();
    double ro = reads.read_amplification();
    double per_get = static_cast<double>(reads.total_bytes_read()) /
                     kEntrySize / kQueries;
    array.ResetStats();
    for (int u = 0; u < 200; ++u) {
      (void)array.Update(rng.NextBelow(n), u);
    }
    double uo = array.stats().write_amplification();
    table.AddRow({FmtU(n), Fmt("%.3f", mo), Fmt("%.1f", ro),
                  Fmt("%.1f", per_get), Fmt("%.3f", uo),
                  "MO=1.0 UO=1.0 RO~N/2=" + Fmt("%.0f", n / 2.0)});
  }
  table.Print();
}

}  // namespace
}  // namespace rum

int main() {
  rum::bench::Banner(
      "E1: The three RUM extremes (paper Section 2, Propositions 1-3)");
  rum::BenchMagicArray();
  rum::BenchPureLog();
  rum::BenchDenseArray();
  return 0;
}

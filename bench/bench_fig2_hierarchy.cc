// Experiment E4 -- the paper's Figure 2: RUM overheads across a memory
// hierarchy. "The RO_n read and UO_n update overheads at memory level n can
// be reduced by storing more data at the previous level n-1, which results,
// at least, in a higher MO_{n-1}."
//
// A B+-Tree runs a skewed point-query + update workload through an LRU
// cache (level n-1) stacked on the simulated device (level n). Sweeping the
// cache capacity shows RO_n and UO_n falling as MO_{n-1} grows.
#include <memory>

#include "bench/bench_util.h"
#include "methods/btree/btree.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::FmtU;
using bench::Table;

void Sweep() {
  Banner(
      "Figure 2 measured: level-(n-1) cache capacity vs level-n overheads");
  Table table({"cache pages", "MO(n-1) KB", "RO(n) blk/get", "UO(n) blk/upd",
               "hit rate"});
  const size_t kN = 100000;
  for (size_t cache_pages :
       {0u, 32u, 128u, 512u, 2048u, 8192u}) {
    RumCounters device_counters;
    BlockDevice bottom(4096, &device_counters);
    CachingDevice cache(&bottom, cache_pages);

    Options options;
    options.block_size = 4096;
    BTree tree(options, &cache);
    std::vector<Entry> entries = MakeSortedEntries(kN);
    (void)tree.BulkLoad(entries);
    (void)cache.FlushAll();
    device_counters.ResetTraffic();
    cache.ResetLevelStats();

    KeyGenerator keys(KeyDistribution::kZipfian, kN, 9, 0.99);
    Rng rng(10);
    const int kGets = 20000;
    const int kUpdates = 4000;
    for (int i = 0; i < kGets; ++i) {
      (void)tree.Get(keys.Next());
    }
    uint64_t reads_after_gets = device_counters.snapshot().blocks_read;
    for (int i = 0; i < kUpdates; ++i) {
      (void)tree.Update(keys.Next(), rng.Next());
    }
    (void)cache.FlushAll();
    uint64_t device_writes = device_counters.snapshot().blocks_written;

    double ro = static_cast<double>(reads_after_gets) / kGets;
    double uo = static_cast<double>(device_writes) / kUpdates;
    double mo_kb = static_cast<double>(cache.level_stats().space_aux) /
                   1024.0;
    double hit_rate =
        cache.hits() + cache.misses() == 0
            ? 0
            : static_cast<double>(cache.hits()) /
                  static_cast<double>(cache.hits() + cache.misses());
    table.AddRow({FmtU(cache_pages), Fmt("%.0f", mo_kb), Fmt("%.3f", ro),
                  Fmt("%.3f", uo), Fmt("%.3f", hit_rate)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 2): RO_n and UO_n fall monotonically as\n"
      "MO_(n-1) -- the space spent one level up -- grows.\n");
}

}  // namespace
}  // namespace rum

int main() {
  rum::bench::Banner(
      "E4: Figure 2 of the paper -- the RUM tradeoff across a memory "
      "hierarchy");
  rum::Sweep();
  return 0;
}

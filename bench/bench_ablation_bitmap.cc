// Ablation A4 -- Section 5's "update-friendly bitmap indexes, where
// updates are absorbed using additional, highly compressible, bitvectors
// which are gradually merged".
//
// Part 1: direct vs delta-buffered updates (write bytes per insert, read
// bytes per query, pending state) across merge thresholds.
// Part 2: WAH compression ratio across bin cardinalities and key orders.
#include <memory>

#include "bench/bench_util.h"
#include "methods/bitmap/bitmap_index.h"
#include "methods/bitmap/wah.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::FmtU;
using bench::Table;

void UpdateFriendliness() {
  Banner("Direct vs delta-buffered bitmap updates");
  Table table({"mode", "merge thresh", "ins aux B/op", "get aux KB/q",
               "pending", "aux space KB"});
  const size_t kInserts = 10000;
  const int kQueries = 300;
  const Key kDomain = 1u << 18;

  struct Config {
    bool update_friendly;
    size_t threshold;
  };
  for (const Config& cfg :
       {Config{false, 0}, Config{true, 512}, Config{true, 2048},
        Config{true, 1u << 30}}) {
    Options options;
    options.block_size = 4096;
    options.bitmap.cardinality = 128;
    options.bitmap.key_domain = kDomain;
    options.bitmap.update_friendly = cfg.update_friendly;
    options.bitmap.delta_merge_threshold = cfg.threshold;
    BitmapIndex index(options);
    Rng rng(12);
    for (size_t i = 0; i < kInserts; ++i) {
      (void)index.Insert(rng.Next() % kDomain, i);
    }
    double ins_bytes =
        static_cast<double>(index.stats().bytes_written_aux) / kInserts;
    uint64_t aux_space = index.stats().space_aux;
    index.ResetStats();
    for (int i = 0; i < kQueries; ++i) {
      (void)index.Get(rng.Next() % kDomain);
    }
    double get_kb = static_cast<double>(index.stats().bytes_read_aux) /
                    1024.0 / kQueries;
    std::string mode = cfg.update_friendly ? "delta" : "direct";
    std::string thresh =
        !cfg.update_friendly
            ? "-"
            : (cfg.threshold == (1u << 30) ? "never" : FmtU(cfg.threshold));
    table.AddRow({mode, thresh, Fmt("%.1f", ins_bytes), Fmt("%.2f", get_kb),
                  FmtU(index.pending_deltas()),
                  Fmt("%.1f", aux_space / 1024.0)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: direct mode pays ~cardinality/8 bytes of bitmap\n"
      "writes per insert; delta mode pays ~8 bytes and defers the rest to\n"
      "merges, at the price of consulting (cheap, uncompressed) deltas on\n"
      "reads -- U bought with R and a little M, as Section 5 proposes.\n");
}

void CompressionRatio() {
  Banner("WAH compression ratio vs cardinality and key order");
  Table table({"cardinality", "key order", "raw KB", "WAH KB", "ratio"});
  const size_t kRows = 200000;
  for (size_t cardinality : {16u, 64u, 256u}) {
    for (bool clustered : {true, false}) {
      std::vector<WahBitmap> bins(cardinality);
      Rng rng(13);
      for (size_t row = 0; row < kRows; ++row) {
        size_t bin;
        if (clustered) {
          bin = row * cardinality / kRows;  // Sorted by bin: long runs.
        } else {
          bin = rng.NextBelow(cardinality);
        }
        for (size_t b = 0; b < cardinality; ++b) {
          bins[b].AppendBit(b == bin);
        }
      }
      uint64_t raw_bits = static_cast<uint64_t>(kRows) * cardinality;
      uint64_t wah_bytes = 0;
      for (const WahBitmap& bitmap : bins) {
        wah_bytes += bitmap.space_bytes();
      }
      double raw_kb = raw_bits / 8.0 / 1024.0;
      double wah_kb = wah_bytes / 1024.0;
      table.AddRow({FmtU(cardinality), clustered ? "clustered" : "random",
                    Fmt("%.0f", raw_kb), Fmt("%.1f", wah_kb),
                    Fmt("%.1fx", raw_kb / wah_kb)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: clustered data compresses by orders of magnitude\n"
      "(long fills); random data with high cardinality still compresses\n"
      "(sparse bins are mostly zero fills), low-cardinality random data\n"
      "barely compresses (dense literals).\n");
}

}  // namespace
}  // namespace rum

int main() {
  rum::bench::Banner("A4: update-friendly bitmap indexes and WAH behavior");
  rum::UpdateFriendliness();
  rum::CompressionRatio();
  return 0;
}

// Ablation A3 -- the adaptive region of Figure 1: database cracking
// converges from scan-cost reads toward index-cost reads, amortizing index
// creation over the query stream.
//
// Per-query read bytes are plotted for cracking against the two static
// extremes it interpolates between: an unindexed column (always scans) and
// a fully-built B+-Tree (pays everything up front).
#include <memory>

#include "bench/bench_util.h"
#include "methods/btree/btree.h"
#include "methods/column/unsorted_column.h"
#include "methods/cracking/cracking.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::FmtU;
using bench::Table;

void Converge() {
  const size_t kN = 200000;
  const int kQueries = 200;
  const Key kWidth = 200;

  Options options;
  options.block_size = 4096;
  options.cracking.min_piece_entries = 128;
  CrackedColumn cracking(options);
  BTree btree(options);
  UnsortedColumn heap(options);

  std::vector<Entry> entries = MakeSortedEntries(kN);
  (void)cracking.BulkLoad(entries);
  (void)btree.BulkLoad(entries);
  (void)heap.BulkLoad(entries);
  uint64_t btree_build_writes = btree.stats().total_bytes_written();
  cracking.ResetStats();
  btree.ResetStats();
  heap.ResetStats();

  Banner("Per-query read cost over the query sequence (KB read per query)");
  Table table({"query#", "cracking KB", "cracking writes KB", "btree KB",
               "full-scan KB", "cracks"});
  Rng rng(8);
  std::vector<Entry> out;
  for (int q = 0; q < kQueries; ++q) {
    Key lo = rng.NextBelow(kN - kWidth);
    uint64_t crack_reads_before = cracking.stats().total_bytes_read();
    uint64_t crack_writes_before = cracking.stats().total_bytes_written();
    uint64_t btree_before = btree.stats().total_bytes_read();
    uint64_t heap_before = heap.stats().total_bytes_read();
    out.clear();
    (void)cracking.Scan(lo, lo + kWidth, &out);
    out.clear();
    (void)btree.Scan(lo, lo + kWidth, &out);
    if (q < 8 || q % 50 == 0) {  // The heap scan is slow; sample it.
      out.clear();
      (void)heap.Scan(lo, lo + kWidth, &out);
    }
    if (q < 8 || q % 20 == 0 || q == kQueries - 1) {
      double crack_kb =
          (cracking.stats().total_bytes_read() - crack_reads_before) /
          1024.0;
      double crack_w_kb = (cracking.stats().total_bytes_written() -
                           crack_writes_before) /
                          1024.0;
      double btree_kb =
          (btree.stats().total_bytes_read() - btree_before) / 1024.0;
      uint64_t heap_delta = heap.stats().total_bytes_read() - heap_before;
      table.AddRow({FmtU(q), Fmt("%.1f", crack_kb), Fmt("%.1f", crack_w_kb),
                    Fmt("%.1f", btree_kb),
                    heap_delta == 0 ? "-" : Fmt("%.1f", heap_delta / 1024.0),
                    FmtU(cracking.crack_count())});
    }
  }
  table.Print();
  std::printf(
      "\nB+-Tree up-front build cost: %.0f KB written (cracking spread its\n"
      "partitioning writes across the early queries instead).\n",
      btree_build_writes / 1024.0);
  std::printf(
      "\nExpected shape: cracking's first queries read (and write) on the\n"
      "order of the full column, then fall by orders of magnitude toward\n"
      "the B+-Tree's cost; the unindexed column stays flat and high.\n");
}

}  // namespace
}  // namespace rum

int main() {
  rum::bench::Banner(
      "A3: adaptive indexing -- cracking convergence between scan and "
      "index");
  rum::Converge();
  return 0;
}

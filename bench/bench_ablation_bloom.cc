// Ablation A1 -- Section 5's "access methods with iterative logs enhanced
// by probabilistic data structures that allows for more efficient reads ...
// at the expense of additional space".
//
// Sweep the LSM's Bloom bits/key: read amplification (especially for
// misses) falls as auxiliary filter space grows -- buying R with M.
#include <memory>

#include "bench/bench_util.h"
#include "methods/lsm/lsm_tree.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::FmtU;
using bench::Table;

void Sweep(LsmPolicy policy, const char* label) {
  Banner(label);
  Table table({"bits/key", "filter KB", "MO", "hit blk/q", "miss blk/q",
               "RO(mixed)"});
  const size_t kN = 60000;
  for (size_t bits : {0u, 2u, 4u, 6u, 8u, 10u, 12u, 16u}) {
    Options options;
    options.block_size = 4096;
    options.lsm.memtable_entries = 2048;
    options.lsm.bloom_bits_per_key = bits;
    options.lsm.policy = policy;
    LsmTree tree(options);
    Rng load_rng(4);
    for (size_t i = 0; i < kN; ++i) {
      (void)tree.Insert(load_rng.NextBelow(1u << 20) * 2, i);
    }
    uint64_t filter_bytes = tree.stats().space_aux;
    double mo = tree.stats().space_amplification();

    tree.ResetStats();
    Rng rng(5);
    Rng replay(4);  // Same seed as the loader: replays inserted keys.
    const int kQ = 3000;
    for (int i = 0; i < kQ; ++i) {
      (void)tree.Get(replay.NextBelow(1u << 20) * 2);  // All hits.
    }
    double hit_blocks =
        static_cast<double>(tree.stats().blocks_read) / kQ;
    tree.ResetStats();
    for (int i = 0; i < kQ; ++i) {
      (void)tree.Get(rng.NextBelow(1u << 20) * 2 + 1);  // All misses.
    }
    double miss_blocks =
        static_cast<double>(tree.stats().blocks_read) / kQ;
    tree.ResetStats();
    for (int i = 0; i < kQ; ++i) {
      Key k = rng.NextBelow(1u << 21);
      (void)tree.Get(k);
    }
    double ro = tree.stats().read_amplification();
    table.AddRow({FmtU(bits), Fmt("%.0f", filter_bytes / 1024.0),
                  Fmt("%.3f", mo), Fmt("%.2f", hit_blocks),
                  Fmt("%.3f", miss_blocks),
                  ro == 0 ? "-" : Fmt("%.1f", ro)});
  }
  table.Print();
}

}  // namespace
}  // namespace rum

int main() {
  rum::bench::Banner(
      "A1: Bloom bits/key vs LSM read cost -- spending M to buy R");
  rum::Sweep(rum::LsmPolicy::kLeveled, "Levelled LSM");
  rum::Sweep(rum::LsmPolicy::kTiered, "Tiered LSM");
  std::printf(
      "\nExpected shape: miss cost collapses toward zero blocks within the\n"
      "first ~8 bits/key while filter space (MO) grows linearly; the\n"
      "effect is larger for tiered (more runs to exclude).\n");
  return 0;
}
